(** Parser for external-subset DTD text ([<!ELEMENT>] / [<!ATTLIST>]
    declarations).  The first declared element becomes the root unless
    [~root] is given. *)

exception Parse_error of string * int

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (msg, st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | Some '<'
      when st.pos + 4 <= String.length st.src
           && String.sub st.src st.pos 4 = "<!--" ->
      (* comment *)
      let rec find i =
        if i + 3 > String.length st.src then error st "unterminated comment"
        else if String.sub st.src i 3 = "-->" then st.pos <- i + 3
        else find (i + 1)
      in
      find (st.pos + 4)
    | _ -> continue := false
  done

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | '#' -> true
  | _ -> false

let read_name st =
  skip_ws st;
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then error st "expected a name";
  String.sub st.src start (st.pos - start)

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  skip_ws st;
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st (Printf.sprintf "expected %S" s)

(* content particle grammar:
     cp    ::= (name | group) , optionally followed by ? * +
     group ::= LPAREN cp (comma-separated or bar-separated) RPAREN *)
let rec parse_cp st : Content_model.particle =
  skip_ws st;
  let base =
    if looking_at st "(" then parse_group st
    else Content_model.Name (read_name st)
  in
  match peek st with
  | Some '?' ->
    advance st;
    Content_model.Opt base
  | Some '*' ->
    advance st;
    Content_model.Star base
  | Some '+' ->
    advance st;
    Content_model.Plus base
  | _ -> base

and parse_group st : Content_model.particle =
  expect st "(";
  let first = parse_cp st in
  skip_ws st;
  match peek st with
  | Some ',' ->
    let items = ref [ first ] in
    while (skip_ws st; looking_at st ",") do
      expect st ",";
      items := parse_cp st :: !items
    done;
    expect st ")";
    Content_model.Seq (List.rev !items)
  | Some '|' ->
    let items = ref [ first ] in
    while (skip_ws st; looking_at st "|") do
      expect st "|";
      items := parse_cp st :: !items
    done;
    expect st ")";
    Content_model.Choice (List.rev !items)
  | Some ')' ->
    advance st;
    Content_model.Seq [ first ]
  | _ -> error st "expected ',', '|' or ')'"

let parse_content_model st : Content_model.t =
  skip_ws st;
  if looking_at st "EMPTY" then begin
    st.pos <- st.pos + 5;
    Content_model.Empty
  end
  else if looking_at st "ANY" then begin
    st.pos <- st.pos + 3;
    Content_model.Any
  end
  else begin
    (* peek inside a group for #PCDATA *)
    let save = st.pos in
    expect st "(";
    skip_ws st;
    if looking_at st "#PCDATA" then begin
      st.pos <- st.pos + String.length "#PCDATA";
      let names = ref [] in
      while (skip_ws st; looking_at st "|") do
        expect st "|";
        names := read_name st :: !names
      done;
      expect st ")";
      (* optional trailing '*' *)
      (if looking_at st "*" then advance st);
      Content_model.Mixed (List.rev !names)
    end
    else begin
      st.pos <- save;
      match parse_cp st with
      | p -> Content_model.Children p
    end
  end

let parse_att_type st : Dtd.att_type =
  skip_ws st;
  if looking_at st "CDATA" then begin
    st.pos <- st.pos + 5;
    Dtd.Cdata
  end
  else if looking_at st "IDREFS" then begin
    st.pos <- st.pos + 6;
    Dtd.Idrefs
  end
  else if looking_at st "IDREF" then begin
    st.pos <- st.pos + 5;
    Dtd.Idref
  end
  else if looking_at st "ID" then begin
    st.pos <- st.pos + 2;
    Dtd.Id
  end
  else if looking_at st "NMTOKEN" then begin
    st.pos <- st.pos + 7;
    Dtd.Cdata
  end
  else if looking_at st "(" then begin
    expect st "(";
    let vs = ref [ read_name st ] in
    while (skip_ws st; looking_at st "|") do
      expect st "|";
      vs := read_name st :: !vs
    done;
    expect st ")";
    Dtd.Enum (List.rev !vs)
  end
  else error st "expected attribute type"

let read_quoted st =
  skip_ws st;
  match peek st with
  | Some (('"' | '\'') as q) ->
    advance st;
    let start = st.pos in
    while (match peek st with Some c when c <> q -> true | _ -> false) do
      advance st
    done;
    let v = String.sub st.src start (st.pos - start) in
    expect st (String.make 1 q);
    v
  | _ -> error st "expected quoted default"

let parse_att_default st : Dtd.att_default =
  skip_ws st;
  if looking_at st "#REQUIRED" then begin
    st.pos <- st.pos + 9;
    Dtd.Required
  end
  else if looking_at st "#IMPLIED" then begin
    st.pos <- st.pos + 8;
    Dtd.Implied
  end
  else if looking_at st "#FIXED" then begin
    st.pos <- st.pos + 6;
    Dtd.Fixed (read_quoted st)
  end
  else Dtd.Default (read_quoted st)

(** Parse DTD text.  Returns the constructed {!Dtd.t}. *)
let parse ?root (src : string) : Dtd.t =
  let st = { src; pos = 0 } in
  let decls : (string * Content_model.t) list ref = ref [] in
  let attlists : (string * Dtd.attribute list) list ref = ref [] in
  let continue = ref true in
  while !continue do
    skip_ws st;
    if st.pos >= String.length st.src then continue := false
    else if looking_at st "<!ELEMENT" then begin
      st.pos <- st.pos + String.length "<!ELEMENT";
      let name = read_name st in
      let cm = parse_content_model st in
      expect st ">";
      decls := (name, cm) :: !decls
    end
    else if looking_at st "<!ATTLIST" then begin
      st.pos <- st.pos + String.length "<!ATTLIST";
      let name = read_name st in
      let atts = ref [] in
      while (skip_ws st; not (looking_at st ">")) do
        let att_name = read_name st in
        let att_type = parse_att_type st in
        let att_default = parse_att_default st in
        atts := { Dtd.att_name; att_type; att_default } :: !atts
      done;
      expect st ">";
      attlists := (name, List.rev !atts) :: !attlists
    end
    else if looking_at st "<!ENTITY" || looking_at st "<!NOTATION" then begin
      (* skip to '>' *)
      while (match peek st with Some c when c <> '>' -> true | _ -> false) do
        advance st
      done;
      expect st ">"
    end
    else error st "expected a declaration"
  done;
  let decls = List.rev !decls in
  let root =
    match root, decls with
    | Some r, _ -> r
    | None, (name, _) :: _ -> name
    | None, [] -> invalid_arg "Dtd_parser.parse: empty DTD"
  in
  Dtd.of_list ~root
    (List.map
       (fun (name, cm) ->
         let atts =
           List.concat_map (fun (n, ats) -> if n = name then ats else []) !attlists
         in
         (name, cm, atts))
       decls)
