(** DTD model: element declarations with content models and attribute
    lists — both rule R1's source-schema input and the template
    generator's target-schema input. *)

type att_type =
  | Cdata
  | Id
  | Idref
  | Idrefs
  | Enum of string list

type att_default =
  | Required
  | Implied
  | Default of string
  | Fixed of string

type attribute = {
  att_name : string;
  att_type : att_type;
  att_default : att_default;
}

type element = {
  el_name : string;
  content : Content_model.t;
  atts : attribute list;
}

type t

val create : root:string -> t

val add_element : t -> ?atts:attribute list -> string -> Content_model.t -> t
(** Functional on the declaration order; redeclaration replaces. *)

val of_list :
  root:string -> (string * Content_model.t * attribute list) list -> t

val find : t -> string -> element option
val root : t -> string

val element_names : t -> string list
(** Declaration order. *)

val attribute_symbols : t -> string list
(** Every declared attribute, as ["@name"] path symbols, deduplicated. *)

val path_symbols : t -> string list
(** The full path alphabet: element names, attribute symbols, ["#text"].
    "k corresponds to the number of XML element types" (Section 8). *)

val attributes_of : t -> string -> attribute list
val children_of : t -> string -> string list

val one_to_one : t -> parent:string -> child:string -> bool
(** Is [child] guaranteed exactly once in each [parent]?  Drives the "1"
    edge labels of templates (Section 4.1). *)

val to_string : t -> string
(** External-subset DTD text, parseable by {!Dtd_parser}. *)
