(** The schema path language used by reduction rule R1 (Section 8).

    A tag path is *schema-consistent* when some instance of the DTD can
    contain a node with that root-to-node tag path.  R1 answers
    membership queries on schema-inconsistent paths with N automatically
    — the paper's Relax-NG filtering, realized on DTDs. *)

type t

val compile : Dtd.t -> t

val admits : t -> string list -> bool
(** Does the schema admit a node with this tag path?  The path starts at
    the root element; ["@name"] and ["#text"] may only terminate it. *)

val to_dfa : t -> Xl_automata.Alphabet.t -> Xl_automata.Dfa.t
(** The same language as a DFA over the given alphabet (which should
    contain the DTD's {!Dtd.path_symbols}).  Used to tighten learned path
    automata for presentation and in tests. *)

val max_depth : ?cap:int -> t -> int
(** Maximum element depth; recursion is capped at [cap]. *)
