(** Document validation against a DTD.

    Each element's child-tag sequence is matched against its content
    model, compiled once to a DFA per element type (Glushkov-style via the
    shared regex machinery).  Attribute lists are checked against ATTLIST
    declarations; ID uniqueness and IDREF resolution are verified. *)

type violation = {
  where : Xl_xml.Node.t;
  what : string;
}

let describe v =
  Printf.sprintf "%s at /%s"
    v.what
    (String.concat "/" (Xl_xml.Node.tag_path v.where))

type compiled = {
  dtd : Dtd.t;
  alphabet : Xl_automata.Alphabet.t;
  models : (string, Xl_automata.Dfa.t option) Hashtbl.t;
      (** None = ANY (everything allowed) *)
}

let compile (dtd : Dtd.t) : compiled =
  let alphabet = Xl_automata.Alphabet.of_list (Dtd.element_names dtd) in
  let models = Hashtbl.create 64 in
  List.iter
    (fun name ->
      match Dtd.find dtd name with
      | None -> ()
      | Some el ->
        let dfa =
          match
            Content_model.to_regex
              ~intern:(Xl_automata.Alphabet.intern alphabet)
              el.Dtd.content
          with
          | None -> None
          | Some r ->
            Some
              (Xl_automata.Regex.to_dfa
                 ~alphabet_size:(Xl_automata.Alphabet.size alphabet)
                 r)
        in
        Hashtbl.replace models name dfa)
    (Dtd.element_names dtd);
  { dtd; alphabet; models }

let check_element (c : compiled) (n : Xl_xml.Node.t) : violation list =
  let open Xl_xml in
  let name = n.Node.name in
  match Dtd.find c.dtd name with
  | None -> [ { where = n; what = Printf.sprintf "undeclared element <%s>" name } ]
  | Some el ->
    let vs = ref [] in
    (* content model *)
    (match Hashtbl.find_opt c.models name with
    | Some (Some dfa) ->
      let child_tags =
        List.filter_map
          (fun ch -> if Node.is_element ch then Some ch.Node.name else None)
          n.Node.children
      in
      (match Xl_automata.Alphabet.encode_opt c.alphabet child_tags with
      | None ->
        vs :=
          { where = n; what = Printf.sprintf "<%s> has an undeclared child" name }
          :: !vs
      | Some word ->
        if not (Xl_automata.Dfa.accepts dfa word) then
          vs :=
            {
              where = n;
              what =
                Printf.sprintf "<%s> content (%s) does not match %s" name
                  (String.concat "," child_tags)
                  (Content_model.to_string el.Dtd.content);
            }
            :: !vs);
      (* PCDATA check: text children only allowed under Mixed *)
      (match el.Dtd.content with
      | Content_model.Mixed _ | Content_model.Any -> ()
      | _ ->
        if List.exists Node.is_text n.Node.children then
          vs :=
            { where = n; what = Printf.sprintf "<%s> may not contain text" name }
            :: !vs)
    | Some None | None -> ());
    (* attributes *)
    let declared = el.Dtd.atts in
    List.iter
      (fun (a : Node.t) ->
        if not (List.exists (fun d -> d.Dtd.att_name = a.Node.name) declared) then
          vs :=
            {
              where = n;
              what = Printf.sprintf "undeclared attribute %s on <%s>" a.Node.name name;
            }
            :: !vs)
      n.Node.attributes;
    List.iter
      (fun d ->
        if
          d.Dtd.att_default = Dtd.Required
          && not
               (List.exists (fun (a : Node.t) -> a.Node.name = d.Dtd.att_name) n.Node.attributes)
        then
          vs :=
            {
              where = n;
              what =
                Printf.sprintf "missing required attribute %s on <%s>" d.Dtd.att_name name;
            }
            :: !vs)
      declared;
    !vs

(** Validate a whole document.  Returns all violations (empty = valid). *)
let validate ?(compiled : compiled option) (dtd : Dtd.t) (doc : Xl_xml.Doc.t) :
    violation list =
  let open Xl_xml in
  let c = match compiled with Some c -> c | None -> compile dtd in
  let root = Doc.root doc in
  let vs = ref [] in
  if root.Node.name <> Dtd.root dtd then
    vs :=
      {
        where = root;
        what =
          Printf.sprintf "root element <%s>, expected <%s>" root.Node.name (Dtd.root dtd);
      }
      :: !vs;
  (* element checks *)
  let rec walk n =
    if Node.is_element n then begin
      vs := check_element c n @ !vs;
      List.iter walk n.Node.children
    end
  in
  walk root;
  (* ID uniqueness and IDREF resolution *)
  let ids = Hashtbl.create 64 in
  let idrefs = ref [] in
  let rec collect n =
    if Node.is_element n then begin
      (match Dtd.find dtd n.Node.name with
      | None -> ()
      | Some el ->
        List.iter
          (fun d ->
            match List.find_opt (fun (a : Node.t) -> a.Node.name = d.Dtd.att_name) n.Node.attributes with
            | None -> ()
            | Some a -> (
              match d.Dtd.att_type with
              | Dtd.Id ->
                if Hashtbl.mem ids a.Node.value then
                  vs :=
                    { where = n; what = Printf.sprintf "duplicate ID %S" a.Node.value }
                    :: !vs
                else Hashtbl.replace ids a.Node.value n
              | Dtd.Idref -> idrefs := (n, a.Node.value) :: !idrefs
              | Dtd.Idrefs ->
                String.split_on_char ' ' a.Node.value
                |> List.iter (fun v -> if v <> "" then idrefs := (n, v) :: !idrefs)
              | Dtd.Cdata | Dtd.Enum _ -> ()))
          el.Dtd.atts)
    end;
    List.iter collect n.Node.children
  in
  collect root;
  List.iter
    (fun (n, v) ->
      if not (Hashtbl.mem ids v) then
        vs := { where = n; what = Printf.sprintf "dangling IDREF %S" v } :: !vs)
    !idrefs;
  List.rev !vs

let is_valid dtd doc = validate dtd doc = []
