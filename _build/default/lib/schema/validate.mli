(** Document validation against a DTD.

    Child sequences are matched against content models compiled to DFAs;
    attribute lists are checked against ATTLIST declarations; ID
    uniqueness and IDREF/IDREFS resolution are verified. *)

type violation = {
  where : Xl_xml.Node.t;
  what : string;
}

val describe : violation -> string

type compiled

val compile : Dtd.t -> compiled
(** Compile once to validate many documents. *)

val validate : ?compiled:compiled -> Dtd.t -> Xl_xml.Doc.t -> violation list
(** All violations, document order; empty means valid. *)

val is_valid : Dtd.t -> Xl_xml.Doc.t -> bool
