(** The schema path language used by reduction rule R1 (Section 8).

    A tag path [s] is *schema-consistent* when some instance of the DTD
    can contain a node whose root-to-node tag path equals [s].  R1 answers
    membership queries on schema-inconsistent paths with N automatically.
    The paper's prototype uses Relax NG for this filtering; on DTDs the
    language is the set of walks of the element graph from the root, plus
    declared attribute ["@a"] and ["#text"] leaf steps. *)

type t = {
  dtd : Dtd.t;
  children : (string, string list) Hashtbl.t;  (** element -> child elements *)
  atts : (string, string list) Hashtbl.t;  (** element -> "@a" symbols *)
  mixed : (string, bool) Hashtbl.t;  (** element may contain text *)
}

let compile (dtd : Dtd.t) : t =
  let children = Hashtbl.create 64 in
  let atts = Hashtbl.create 64 in
  let mixed = Hashtbl.create 64 in
  List.iter
    (fun name ->
      match Dtd.find dtd name with
      | None -> ()
      | Some el ->
        Hashtbl.replace children name (Content_model.child_names el.Dtd.content);
        Hashtbl.replace atts name
          (List.map (fun a -> "@" ^ a.Dtd.att_name) el.Dtd.atts);
        let m =
          match el.Dtd.content with
          | Content_model.Mixed _ | Content_model.Any -> true
          | Content_model.Empty | Content_model.Children _ -> false
        in
        Hashtbl.replace mixed name m)
    (Dtd.element_names dtd);
  { dtd; children; atts; mixed }

let lookup tbl k = Option.value ~default:[] (Hashtbl.find_opt tbl k)

(** Does the schema admit a node with tag path [path]?  [path] starts at
    the root element (e.g. [["site"; "regions"; "africa"; "item"]]). *)
let admits (t : t) (path : string list) : bool =
  let rec walk current rest =
    match rest with
    | [] -> true
    | sym :: rest' ->
      if String.length sym > 0 && sym.[0] = '@' then
        rest' = [] && List.mem sym (lookup t.atts current)
      else if String.equal sym "#text" then
        rest' = [] && Option.value ~default:false (Hashtbl.find_opt t.mixed current)
      else List.mem sym (lookup t.children current) && walk sym rest'
  in
  match path with
  | [] -> false
  | root :: rest -> String.equal root (Dtd.root t.dtd) && walk root rest

(** The schema path language as a DFA over [alphabet] (which must contain
    at least the DTD's {!Dtd.path_symbols}).  Accepts exactly the
    schema-consistent paths; used in tests and to intersect hypothesis
    languages with the schema. *)
let to_dfa (t : t) (alphabet : Xl_automata.Alphabet.t) : Xl_automata.Dfa.t =
  let open Xl_automata in
  let names = Dtd.element_names t.dtd in
  let k = Alphabet.size alphabet in
  (* states: 0 = initial, 1..n = "at element i", n+1 = leaf (attr/text),
     n+2 = dead *)
  let n = List.length names in
  let index = Hashtbl.create 64 in
  List.iteri (fun i name -> Hashtbl.replace index name (i + 1)) names;
  let leaf = n + 1 and dead = n + 2 in
  let states = n + 3 in
  let finals = Array.make states true in
  finals.(0) <- false;
  finals.(dead) <- false;
  let delta = Array.init states (fun _ -> Array.make k dead) in
  let sym_id s = Alphabet.find alphabet s in
  (* initial state: only the root element symbol *)
  (match sym_id (Dtd.root t.dtd), Hashtbl.find_opt index (Dtd.root t.dtd) with
  | Some a, Some q -> delta.(0).(a) <- q
  | _ -> ());
  List.iter
    (fun name ->
      match Hashtbl.find_opt index name with
      | None -> ()
      | Some q ->
        List.iter
          (fun child ->
            match sym_id child, Hashtbl.find_opt index child with
            | Some a, Some q' -> delta.(q).(a) <- q'
            | _ -> ())
          (lookup t.children name);
        List.iter
          (fun att ->
            match sym_id att with
            | Some a -> delta.(q).(a) <- leaf
            | None -> ())
          (lookup t.atts name);
        if Option.value ~default:false (Hashtbl.find_opt t.mixed name) then
          match sym_id "#text" with
          | Some a -> delta.(q).(a) <- leaf
          | None -> ())
    names;
  Dfa.create ~alphabet_size:k ~states ~start:0 ~finals ~delta

(** Maximum depth of the schema (∞ for recursive DTDs is capped at
    [cap]); used to bound enumeration in tests. *)
let max_depth ?(cap = 32) (t : t) : int =
  let memo = Hashtbl.create 64 in
  let rec depth name seen d =
    if d > cap then cap
    else if List.mem name seen then cap
    else
      match Hashtbl.find_opt memo name with
      | Some v -> v
      | None ->
        let kids = lookup t.children name in
        let v =
          1
          + List.fold_left
              (fun acc c -> max acc (depth c (name :: seen) (d + 1)))
              0 kids
        in
        if not (List.mem name seen) then Hashtbl.replace memo name v;
        v
  in
  depth (Dtd.root t.dtd) [] 0
