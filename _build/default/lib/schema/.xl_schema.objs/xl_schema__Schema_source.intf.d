lib/schema/schema_source.mli: Dataguide Dtd Relaxng Schema_paths Xl_automata
