lib/schema/relaxng.ml: Buffer Content_model Dtd List Printf String
