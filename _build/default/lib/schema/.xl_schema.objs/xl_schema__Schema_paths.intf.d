lib/schema/schema_paths.mli: Dtd Xl_automata
