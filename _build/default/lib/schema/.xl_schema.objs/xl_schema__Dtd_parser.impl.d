lib/schema/dtd_parser.ml: Content_model Dtd List Printf String
