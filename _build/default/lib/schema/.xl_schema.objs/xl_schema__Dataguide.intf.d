lib/schema/dataguide.mli: Xl_automata Xl_xml
