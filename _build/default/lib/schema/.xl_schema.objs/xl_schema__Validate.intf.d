lib/schema/validate.mli: Dtd Xl_xml
