lib/schema/schema_source.ml: Dataguide Relaxng Schema_paths Xl_automata
