lib/schema/dtd.ml: Buffer Content_model Hashtbl List Printf String
