lib/schema/dtd.mli: Content_model
