lib/schema/schema_paths.ml: Alphabet Array Content_model Dfa Dtd Hashtbl List Option String Xl_automata
