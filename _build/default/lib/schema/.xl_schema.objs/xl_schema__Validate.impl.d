lib/schema/validate.ml: Content_model Doc Dtd Hashtbl List Node Printf String Xl_automata Xl_xml
