lib/schema/content_model.ml: List String Xl_automata
