lib/schema/relaxng.mli: Dtd
