lib/schema/dtd_parser.mli: Dtd
