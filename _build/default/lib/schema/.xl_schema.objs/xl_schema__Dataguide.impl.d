lib/schema/dataguide.ml: Array Hashtbl List Xl_automata Xl_xml
