lib/schema/content_model.mli: Xl_automata
