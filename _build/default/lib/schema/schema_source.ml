(** Schema sources for rule R1's filtering.

    Section 8: "The current prototype uses the Relax NG for filtering,
    but other forms of metadata such as Graph Schema can be used as
    well."  This module is that pluggability: R1 consumes any source of
    a path-admissibility test — a DTD's path language, a Relax NG
    schema, or a DataGuide derived from the instance itself when no
    schema was supplied. *)

type t =
  | Dtd_paths of Schema_paths.t
  | Relax_ng of Relaxng.t
  | Data_guide of Dataguide.t




let of_dtd dtd = Dtd_paths (Schema_paths.compile dtd)
let of_relaxng rng = Relax_ng rng
let of_dataguide dg = Data_guide dg

(** Is a node with this tag path possible under the source? *)
let admits (t : t) (path : string list) : bool =
  match t with
  | Dtd_paths sp -> Schema_paths.admits sp path
  | Relax_ng rng -> Relaxng.admits rng path
  | Data_guide dg -> Dataguide.admits dg path

(** The path language as a DFA, where the source supports it (used to
    tighten learned automata for presentation). *)
let to_dfa (t : t) (alphabet : Xl_automata.Alphabet.t) :
    Xl_automata.Dfa.t option =
  match t with
  | Dtd_paths sp -> Some (Schema_paths.to_dfa sp alphabet)
  | Data_guide dg -> Some (Dataguide.to_dfa dg alphabet)
  | Relax_ng _ -> None

let describe = function
  | Dtd_paths _ -> "DTD path language"
  | Relax_ng _ -> "Relax NG schema"
  | Data_guide _ -> "DataGuide (instance-derived)"
