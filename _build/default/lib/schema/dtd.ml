(** DTD model: element declarations with content models and attribute
    lists.  This is both the source-schema input of rule R1 and the
    target-schema input of the template generator. *)

type att_type =
  | Cdata
  | Id
  | Idref
  | Idrefs
  | Enum of string list

type att_default =
  | Required
  | Implied
  | Default of string
  | Fixed of string

type attribute = { att_name : string; att_type : att_type; att_default : att_default }

type element = {
  el_name : string;
  content : Content_model.t;
  atts : attribute list;
}

type t = {
  root : string;
  elements : (string, element) Hashtbl.t;
  order : string list;  (** declaration order, for printing *)
}

let create ~root = { root; elements = Hashtbl.create 64; order = [] }

let add_element t ?(atts = []) name content =
  let el = { el_name = name; content; atts } in
  if not (Hashtbl.mem t.elements name) then
    Hashtbl.replace t.elements name el
  else Hashtbl.replace t.elements name el;
  { t with order = (if List.mem name t.order then t.order else t.order @ [ name ]) }

(** Build a DTD from a declaration list: [(name, content, attributes)]. *)
let of_list ~root decls =
  List.fold_left
    (fun t (name, content, atts) -> add_element t ~atts name content)
    (create ~root) decls

let find t name = Hashtbl.find_opt t.elements name
let root t = t.root
let element_names t = t.order

(** Attribute names declared anywhere, as ["@name"] path symbols. *)
let attribute_symbols t =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun name ->
      match find t name with
      | None -> []
      | Some el ->
        List.filter_map
          (fun a ->
            let s = "@" ^ a.att_name in
            if Hashtbl.mem seen s then None
            else begin
              Hashtbl.replace seen s ();
              Some s
            end)
          el.atts)
    t.order

(** All path symbols of the schema: element names, attribute symbols and
    ["#text"].  This is the alphabet the path learner works over —
    "k corresponds to the number of XML element types" (Section 8). *)
let path_symbols t = element_names t @ attribute_symbols t @ [ "#text" ]

let attributes_of t name =
  match find t name with None -> [] | Some el -> el.atts

let children_of t name =
  match find t name with
  | None -> []
  | Some el -> Content_model.child_names el.content

(** Is [child] guaranteed to occur exactly once in each [parent]?  Drives
    the "1" edge labels of templates (Section 4.1). *)
let one_to_one t ~parent ~child =
  match find t parent with
  | None -> false
  | Some el -> Content_model.occurs_exactly_once el.content child

let to_string t =
  let b = Buffer.create 256 in
  List.iter
    (fun name ->
      match find t name with
      | None -> ()
      | Some el ->
        Buffer.add_string b
          (Printf.sprintf "<!ELEMENT %s %s>\n" name (Content_model.to_string el.content));
        if el.atts <> [] then begin
          Buffer.add_string b (Printf.sprintf "<!ATTLIST %s" name);
          List.iter
            (fun a ->
              let ty =
                match a.att_type with
                | Cdata -> "CDATA"
                | Id -> "ID"
                | Idref -> "IDREF"
                | Idrefs -> "IDREFS"
                | Enum vs -> "(" ^ String.concat "|" vs ^ ")"
              in
              let df =
                match a.att_default with
                | Required -> "#REQUIRED"
                | Implied -> "#IMPLIED"
                | Default v -> Printf.sprintf "%S" v
                | Fixed v -> Printf.sprintf "#FIXED %S" v
              in
              Buffer.add_string b (Printf.sprintf "\n  %s %s %s" a.att_name ty df))
            el.atts;
          Buffer.add_string b ">\n"
        end)
    t.order;
  Buffer.contents b
