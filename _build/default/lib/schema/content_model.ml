(** DTD content models: regular expressions over child element names.

    [Mixed] covers [(#PCDATA | a | b)*]; plain [#PCDATA] is [Mixed []]. *)

type t =
  | Empty  (** EMPTY *)
  | Any  (** ANY *)
  | Mixed of string list  (** (#PCDATA | e1 | ... )* *)
  | Children of particle

and particle =
  | Name of string
  | Seq of particle list
  | Choice of particle list
  | Opt of particle  (** p? *)
  | Star of particle  (** p* *)
  | Plus of particle  (** p+ *)

(** Element names that can occur as children. *)
let child_names (t : t) : string list =
  let rec names acc = function
    | Name n -> if List.mem n acc then acc else n :: acc
    | Seq ps | Choice ps -> List.fold_left names acc ps
    | Opt p | Star p | Plus p -> names acc p
  in
  match t with
  | Empty -> []
  | Any -> []
  | Mixed ns -> ns
  | Children p -> List.rev (names [] p)

(** [occurs_exactly_once t name]: does every instance of this content model
    contain exactly one [name] child?  This is the one-to-one analysis
    behind the template's "1"-labeled edges (Section 4.1). *)
let occurs_exactly_once (t : t) (target : string) : bool =
  (* min/max occurrence count of [target] in words of the particle
     language; max is capped at 2 ("more than one"). *)
  let rec minmax = function
    | Name n -> if String.equal n target then (1, 1) else (0, 0)
    | Seq ps ->
      List.fold_left
        (fun (mn, mx) p ->
          let mn', mx' = minmax p in
          (mn + mn', min 2 (mx + mx')))
        (0, 0) ps
    | Choice ps ->
      let pairs = List.map minmax ps in
      let mn = List.fold_left (fun a (m, _) -> min a m) max_int pairs in
      let mx = List.fold_left (fun a (_, m) -> max a m) 0 pairs in
      (mn, mx)
    | Opt p ->
      let _, mx = minmax p in
      (0, mx)
    | Star p ->
      let _, mx = minmax p in
      (0, if mx > 0 then 2 else 0)
    | Plus p ->
      let mn, mx = minmax p in
      (mn, if mx > 0 then 2 else 0)
  in
  match t with
  | Empty | Any | Mixed _ -> false
  | Children p -> minmax p = (1, 1)

(** Compile the content model to a DFA over an alphabet of child-element
    names for validation.  [intern] maps names to symbols. *)
let to_regex ~(intern : string -> int) (t : t) : Xl_automata.Regex.t option =
  let open Xl_automata.Regex in
  let rec conv = function
    | Name n -> Sym (intern n)
    | Seq ps -> seq (List.map conv ps)
    | Choice ps -> alt (List.map conv ps)
    | Opt p -> opt (conv p)
    | Star p -> Star (conv p)
    | Plus p -> plus (conv p)
  in
  match t with
  | Any -> None
  | Empty -> Some Eps
  | Mixed ns -> Some (Star (alt (List.map (fun n -> Sym (intern n)) ns)))
  | Children p -> Some (conv p)

let rec particle_to_string = function
  | Name n -> n
  | Seq ps -> "(" ^ String.concat "," (List.map particle_to_string ps) ^ ")"
  | Choice ps -> "(" ^ String.concat "|" (List.map particle_to_string ps) ^ ")"
  | Opt p -> particle_to_string p ^ "?"
  | Star p -> particle_to_string p ^ "*"
  | Plus p -> particle_to_string p ^ "+"

let to_string = function
  | Empty -> "EMPTY"
  | Any -> "ANY"
  | Mixed [] -> "(#PCDATA)"
  | Mixed ns -> "(#PCDATA|" ^ String.concat "|" ns ^ ")*"
  | Children p -> particle_to_string p
