(** DTD content models: regular expressions over child element names.

    [Mixed] covers [(#PCDATA | a | b)*]; plain [#PCDATA] is [Mixed []]. *)

type t =
  | Empty  (** EMPTY *)
  | Any  (** ANY *)
  | Mixed of string list  (** (#PCDATA | e1 | ... )* *)
  | Children of particle

and particle =
  | Name of string
  | Seq of particle list
  | Choice of particle list
  | Opt of particle  (** p? *)
  | Star of particle  (** p* *)
  | Plus of particle  (** p+ *)

val child_names : t -> string list
(** Element names that can occur as children, declaration order. *)

val occurs_exactly_once : t -> string -> bool
(** Does every instance of this content model contain exactly one child
    of the given name?  The one-to-one analysis behind the template's
    "1"-labeled edges (paper Section 4.1). *)

val to_regex : intern:(string -> int) -> t -> Xl_automata.Regex.t option
(** Compile for validation; [None] means ANY (everything allowed). *)

val particle_to_string : particle -> string
val to_string : t -> string
