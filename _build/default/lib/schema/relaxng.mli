(** A Relax NG (compact syntax) subset — the schema language the paper's
    prototype actually filters with ("The current prototype uses the
    Relax NG for filtering", Section 8).

    Supported compact-syntax constructs: [start =] and named definitions,
    [element n { p }], [attribute n { text }], [text], [empty],
    sequencing [,], choice [|], and the [? * +] occurrence modifiers. *)

type pattern =
  | Element of string * pattern
  | Attribute of string
  | Text
  | Empty
  | Seq of pattern * pattern
  | Choice of pattern * pattern
  | Opt of pattern
  | Star of pattern
  | Plus of pattern
  | Ref of string

type t = {
  start : pattern;
  defs : (string * pattern) list;
}

exception Parse_error of string * int

val parse : string -> t
(** Parse compact syntax. *)

val admits : t -> string list -> bool
(** Does the schema admit a node with this tag path?  The same contract
    as {!Schema_paths.admits}, so rule R1 accepts either language. *)

val of_dtd : Dtd.t -> t
(** Convert a DTD; the path language is preserved exactly. *)

val pattern_to_string : pattern -> string
val to_string : t -> string
(** Compact syntax, reparseable. *)
