(** Parser for external-subset DTD text ([<!ELEMENT>]/[<!ATTLIST>]).

    The first declared element becomes the root unless [~root] says
    otherwise; [<!ENTITY>] and [<!NOTATION>] declarations are skipped. *)

exception Parse_error of string * int
(** message, byte position *)

val parse : ?root:string -> string -> Dtd.t
