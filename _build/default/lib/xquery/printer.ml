(** Pretty-printer: AST back to XQuery text.

    The learner's final output — the generated mapping query — is printed
    with this module, in the style of the paper's Figure 2. *)

let cmp_to_string = function
  | Ast.Eq -> "="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Is -> "is"

let arith_to_string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "div"
  | Ast.Mod -> "mod"

let atom_to_string = function
  | Value.Str s -> Printf.sprintf "%S" s
  | Value.Num f -> Value.atom_to_string (Value.Num f)
  | Value.Bool b -> if b then "true()" else "false()"

let rec to_string ?(indent = 0) (e : Ast.expr) : string =
  let pad n = String.make (2 * n) ' ' in
  match e with
  | Ast.Literal a -> atom_to_string a
  | Ast.Var v -> "$" ^ v
  | Ast.Doc_root None -> "document()"
  | Ast.Doc_root (Some u) -> Printf.sprintf "document(%S)" u
  | Ast.Sequence es ->
    "(" ^ String.concat ", " (List.map (to_string ~indent) es) ^ ")"
  | Ast.Path (Ast.Doc_root None, p) -> Path_expr.to_string p
  | Ast.Path (e, p) -> to_string ~indent e ^ Path_expr.to_string p
  | Ast.Simple (e, p) -> to_string ~indent e ^ "/" ^ Simple_path.to_string p
  | Ast.Flwor f -> flwor_to_string ~indent f
  | Ast.Some_ (bs, body) ->
    Printf.sprintf "some %s satisfies %s" (bindings_to_string ~indent bs)
      (to_string ~indent body)
  | Ast.Every (bs, body) ->
    Printf.sprintf "every %s satisfies %s" (bindings_to_string ~indent bs)
      (to_string ~indent body)
  | Ast.If (c, t, f) ->
    Printf.sprintf "if (%s) then %s else %s" (to_string ~indent c)
      (to_string ~indent t) (to_string ~indent f)
  | Ast.Elem (tag, contents) ->
    let attrs, kids =
      List.partition (function Ast.Attr_c _ -> true | _ -> false) contents
    in
    let attr_str =
      String.concat ""
        (List.map
           (function
             | Ast.Attr_c (n, e) -> Printf.sprintf " %s=\"{%s}\"" n (to_string ~indent e)
             | _ -> "")
           attrs)
    in
    if kids = [] then Printf.sprintf "<%s%s/>" tag attr_str
    else
      Printf.sprintf "<%s%s>%s{\n%s%s\n%s}%s</%s>" tag attr_str "" (pad (indent + 1))
        (String.concat (",\n" ^ pad (indent + 1))
           (List.map (to_string ~indent:(indent + 1)) kids))
        (pad indent) "" tag
  | Ast.Attr_c (n, e) -> Printf.sprintf "attribute %s {%s}" n (to_string ~indent e)
  | Ast.Text_c e -> Printf.sprintf "text {%s}" (to_string ~indent e)
  | Ast.Cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (atomic ~indent a) (cmp_to_string op) (atomic ~indent b)
  | Ast.Arith (op, a, b) ->
    Printf.sprintf "%s %s %s" (atomic ~indent a) (arith_to_string op) (atomic ~indent b)
  | Ast.And (a, b) ->
    Printf.sprintf "%s and %s" (atomic ~indent a) (atomic ~indent b)
  | Ast.Or (a, b) -> Printf.sprintf "(%s or %s)" (atomic ~indent a) (atomic ~indent b)
  | Ast.Not a -> Printf.sprintf "not(%s)" (to_string ~indent a)
  | Ast.Call (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map (to_string ~indent) args))
  | Ast.Union (a, b) ->
    Printf.sprintf "%s union %s" (atomic ~indent a) (atomic ~indent b)

and atomic ~indent e =
  match e with
  | Ast.Flwor _ | Ast.Some_ _ | Ast.Every _ | Ast.If _ ->
    "(" ^ to_string ~indent e ^ ")"
  | _ -> to_string ~indent e

and bindings_to_string ~indent bs =
  String.concat ", "
    (List.map (fun (v, e) -> Printf.sprintf "$%s in %s" v (to_string ~indent e)) bs)

and flwor_to_string ~indent (f : Ast.flwor) : string =
  let pad n = String.make (2 * n) ' ' in
  let b = Buffer.create 128 in
  if f.Ast.for_ <> [] then begin
    Buffer.add_string b ("for " ^ bindings_to_string ~indent f.Ast.for_);
    Buffer.add_char b '\n'
  end;
  List.iter
    (fun (v, e) ->
      Buffer.add_string b
        (pad indent ^ Printf.sprintf "let $%s := %s\n" v (to_string ~indent e)))
    f.Ast.let_;
  (match f.Ast.where with
  | Some w -> Buffer.add_string b (pad indent ^ "where " ^ to_string ~indent w ^ "\n")
  | None -> ());
  (match f.Ast.order_by with
  | [] -> ()
  | keys ->
    Buffer.add_string b
      (pad indent ^ "order by "
      ^ String.concat ", "
          (List.map
             (fun k ->
               to_string ~indent k.Ast.key ^ if k.Ast.descending then " descending" else "")
             keys)
      ^ "\n"));
  Buffer.add_string b
    (pad indent ^ "return " ^ to_string ~indent:(indent + 1) f.Ast.return);
  Buffer.contents b
