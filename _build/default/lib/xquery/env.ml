(** Variable environments. *)

module M = Map.Make (String)

type t = Value.t M.t

let empty : t = M.empty
let bind (env : t) v x : t = M.add v x env
let find (env : t) v : Value.t option = M.find_opt v env

let find_exn (env : t) v : Value.t =
  match M.find_opt v env with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "unbound variable $%s" v)

let bindings (env : t) = M.bindings env
let of_list l : t = List.fold_left (fun e (v, x) -> bind e v x) empty l
