(** Evaluator for the XQuery subset.

    Regular location paths are compiled (once, cached) to DFAs over the
    context's alphabet and evaluated by walking the tree while tracking
    the automaton state, with dead-state pruning — what makes "selection
    by regular path expression" cheap enough to recompute extents
    repeatedly during learning. *)

type compiled_path = {
  dfa : Xl_automata.Dfa.t;
  live : bool array;  (** states from which a final state is reachable *)
}

type ctx = {
  store : Xl_xml.Store.t;
  alphabet : Xl_automata.Alphabet.t;
  cache : (Path_expr.t, compiled_path) Hashtbl.t;
  mutable constructed : int;  (** constructed-element counter *)
}

val liveness : Xl_automata.Dfa.t -> bool array
(** Per-state "can still accept" flags, for pruning tree walks. *)

val make_ctx : Xl_xml.Store.t -> ctx
(** Interns every symbol of every document in the store. *)

val ctx_of_doc : Xl_xml.Doc.t -> ctx

val intern_path_symbols : Xl_automata.Alphabet.t -> Path_expr.t -> unit
(** Intern a path's literal tags so wildcard expansion and compilation
    agree on the alphabet. *)

val compile_path : ctx -> Path_expr.t -> compiled_path

val eval_path : ctx -> Path_expr.t -> Xl_xml.Node.t -> Xl_xml.Node.t list
(** Nodes reachable from the base by the regular path (the base's own
    symbol is not consumed), document order. *)

exception Type_error of string

val eval : ctx -> Env.t -> Ast.expr -> Value.t

val run : ?env:Env.t -> ctx -> Ast.expr -> Value.t
(** Evaluate a closed query. *)

val run_to_string : ?env:Env.t -> ctx -> Ast.expr -> string
(** Evaluate and serialize. *)
