(** Pretty-printer: AST back to XQuery text — how the learner presents
    the generated mapping query (paper Figure 2 style).  Output reparses
    with {!Parser.parse} to an evaluation-equivalent query. *)

val cmp_to_string : Ast.cmp_op -> string
val arith_to_string : Ast.arith_op -> string
val atom_to_string : Value.atom -> string

val to_string : ?indent:int -> Ast.expr -> string
