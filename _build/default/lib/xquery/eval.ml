(** Evaluator for the XQuery subset.

    Regular location paths are compiled (once, cached) to DFAs over the
    context's alphabet and evaluated by walking the tree while tracking
    the automaton state, with dead-state pruning.  This is what makes
    "selection by regular path expression" cheap enough to recompute
    extents repeatedly during learning. *)

open Xl_xml

type compiled_path = {
  dfa : Xl_automata.Dfa.t;
  live : bool array;  (** states from which a final state is reachable *)
}

type ctx = {
  store : Store.t;
  alphabet : Xl_automata.Alphabet.t;
  cache : (Path_expr.t, compiled_path) Hashtbl.t;
  mutable constructed : int;  (** count of constructed elements (stats) *)
}

let liveness (dfa : Xl_automata.Dfa.t) : bool array =
  let n = Xl_automata.Dfa.state_count dfa in
  let live = Array.copy dfa.Xl_automata.Dfa.finals in
  let changed = ref true in
  while !changed do
    changed := false;
    for q = 0 to n - 1 do
      if not live.(q) then
        for a = 0 to Xl_automata.Dfa.alphabet_size dfa - 1 do
          if live.(Xl_automata.Dfa.step dfa q a) && not live.(q) then begin
            live.(q) <- true;
            changed := true
          end
        done
    done
  done;
  live

let intern_doc_symbols alphabet doc =
  List.iter
    (fun n -> ignore (Xl_automata.Alphabet.intern alphabet (Node.symbol n)))
    (Doc.all_nodes doc)

let make_ctx (store : Store.t) : ctx =
  let alphabet = Xl_automata.Alphabet.create () in
  List.iter (intern_doc_symbols alphabet) (Store.docs store);
  { store; alphabet; cache = Hashtbl.create 32; constructed = 0 }

let ctx_of_doc doc = make_ctx (Store.of_docs [ doc ])

(* intern every tag literal of the path so Any_elem expansion and
   compilation agree on the alphabet *)
let rec intern_path_symbols alphabet (p : Path_expr.t) =
  match p with
  | Path_expr.Step (_, test) -> (
    match Path_expr.test_symbol test with
    | Some s -> ignore (Xl_automata.Alphabet.intern alphabet s)
    | None -> ())
  | Path_expr.Seq (a, b) | Path_expr.Alt (a, b) ->
    intern_path_symbols alphabet a;
    intern_path_symbols alphabet b
  | Path_expr.Star a -> intern_path_symbols alphabet a
  | Path_expr.Eps -> ()

let compile_path (ctx : ctx) (p : Path_expr.t) : compiled_path =
  match Hashtbl.find_opt ctx.cache p with
  | Some c when Xl_automata.Dfa.alphabet_size c.dfa = Xl_automata.Alphabet.size ctx.alphabet ->
    c
  | _ ->
    intern_path_symbols ctx.alphabet p;
    let regex = Path_expr.to_regex ctx.alphabet p in
    let dfa =
      Xl_automata.Regex.to_dfa ~alphabet_size:(Xl_automata.Alphabet.size ctx.alphabet) regex
    in
    let c = { dfa; live = liveness dfa } in
    Hashtbl.replace ctx.cache p c;
    c

(** Nodes reachable from [from] by the regular path [p] — [from]'s own
    symbol is not consumed.  Results in document order. *)
let eval_path (ctx : ctx) (p : Path_expr.t) (from : Node.t) : Node.t list =
  let { dfa; live } = compile_path ctx p in
  let out = ref [] in
  let sym n =
    match Xl_automata.Alphabet.find ctx.alphabet (Node.symbol n) with
    | Some a -> a
    | None -> Xl_automata.Alphabet.intern ctx.alphabet (Node.symbol n)
  in
  let rec visit q n =
    (* try attributes *)
    List.iter
      (fun a ->
        let q' = Xl_automata.Dfa.step dfa q (sym a) in
        if q' >= 0 && dfa.Xl_automata.Dfa.finals.(q') then out := a :: !out)
      n.Node.attributes;
    (* children: text and elements *)
    List.iter
      (fun c ->
        let s = sym c in
        if s < Xl_automata.Dfa.alphabet_size dfa then begin
          let q' = Xl_automata.Dfa.step dfa q s in
          if live.(q') then begin
            if dfa.Xl_automata.Dfa.finals.(q') then out := c :: !out;
            if Node.is_element c then visit q' c
          end
        end)
      n.Node.children
  in
  visit dfa.Xl_automata.Dfa.start from;
  List.sort Node.compare_order (List.rev !out)

(* atomized-sequence construction content: adjacent atoms joined by a
   space, nodes copied *)
let rec item_to_frags (it : Value.item) : Frag.t list =
  match it with
  | Value.Atom a -> [ Frag.T (Value.atom_to_string a) ]
  | Value.Node n -> (
    match n.Node.kind with
    | Node.Text -> [ Frag.T n.Node.value ]
    | Node.Attribute -> [ Frag.T n.Node.value ]
    | Node.Element -> [ Serialize.node_to_frag n ]
    | Node.Document -> List.concat_map item_to_frags (Value.of_nodes n.Node.children))

let sequence_to_frags (v : Value.t) : Frag.t list =
  (* merge adjacent atoms with a single space, XQuery-style *)
  let rec go = function
    | [] -> []
    | Value.Atom a :: (Value.Atom _ :: _ as rest) ->
      Frag.T (Value.atom_to_string a ^ " ") :: go rest
    | it :: rest -> item_to_frags it @ go rest
  in
  go v

exception Type_error of string

let rec eval (ctx : ctx) (env : Env.t) (e : Ast.expr) : Value.t =
  match e with
  | Ast.Literal a -> [ Value.Atom a ]
  | Ast.Sequence es -> List.concat_map (eval ctx env) es
  | Ast.Var v -> Env.find_exn env v
  | Ast.Doc_root uri -> (
    match uri with
    | None -> [ Value.Node (Store.default ctx.store).Doc.doc_node ]
    | Some u -> [ Value.Node (Store.find_exn ctx.store u).Doc.doc_node ])
  | Ast.Path (e, p) ->
    let v = eval ctx env e in
    Value.document_order
      (Value.of_nodes (List.concat_map (eval_path ctx p) (Value.nodes_of v)))
  | Ast.Simple (e, p) ->
    let v = eval ctx env e in
    Value.document_order
      (Value.of_nodes (List.concat_map (Simple_path.eval p) (Value.nodes_of v)))
  | Ast.Flwor f -> eval_flwor ctx env f
  | Ast.Some_ (bs, body) -> Value.of_bool (eval_quant ctx env bs body ~exists:true)
  | Ast.Every (bs, body) -> Value.of_bool (eval_quant ctx env bs body ~exists:false)
  | Ast.If (c, t, f) ->
    if Value.to_bool (eval ctx env c) then eval ctx env t else eval ctx env f
  | Ast.Elem (tag, contents) ->
    let attrs, kids =
      List.fold_left
        (fun (attrs, kids) c ->
          match c with
          | Ast.Attr_c (name, e) ->
            (attrs @ [ (name, Value.string_value (eval ctx env e)) ], kids)
          | _ -> (attrs, kids @ sequence_to_frags (eval ctx env c)))
        ([], []) contents
    in
    ctx.constructed <- ctx.constructed + 1;
    let doc = Doc.of_frag ~uri:"#constructed" (Frag.E (tag, attrs, kids)) in
    [ Value.Node (Doc.root doc) ]
  | Ast.Attr_c (_, e) ->
    (* attribute outside an element constructor: atomize *)
    [ Value.Atom (Value.Str (Value.string_value (eval ctx env e))) ]
  | Ast.Text_c e -> [ Value.Atom (Value.Str (Value.string_value (eval ctx env e))) ]
  | Ast.Cmp (op, a, b) ->
    Value.of_bool (general_compare op (eval ctx env a) (eval ctx env b))
  | Ast.Arith (op, a, b) -> eval_arith op (eval ctx env a) (eval ctx env b)
  | Ast.And (a, b) ->
    Value.of_bool (Value.to_bool (eval ctx env a) && Value.to_bool (eval ctx env b))
  | Ast.Or (a, b) ->
    Value.of_bool (Value.to_bool (eval ctx env a) || Value.to_bool (eval ctx env b))
  | Ast.Not a -> Value.of_bool (not (Value.to_bool (eval ctx env a)))
  | Ast.Call (name, args) -> Functions.apply name (List.map (eval ctx env) args)
  | Ast.Union (a, b) ->
    Value.document_order (eval ctx env a @ eval ctx env b)

and eval_flwor ctx env (f : Ast.flwor) : Value.t =
  (* expand for-bindings into a tuple stream *)
  let tuples =
    List.fold_left
      (fun envs (v, e) ->
        List.concat_map
          (fun env ->
            List.map (fun item -> Env.bind env v [ item ]) (eval ctx env e))
          envs)
      [ env ] f.Ast.for_
  in
  let tuples =
    List.map
      (fun env ->
        List.fold_left (fun env (v, e) -> Env.bind env v (eval ctx env e)) env f.Ast.let_)
      tuples
  in
  let tuples =
    match f.Ast.where with
    | None -> tuples
    | Some w -> List.filter (fun env -> Value.to_bool (eval ctx env w)) tuples
  in
  let tuples =
    match f.Ast.order_by with
    | [] -> tuples
    | keys ->
      let decorated =
        List.map
          (fun env ->
            (List.map (fun k -> (Value.atomize (eval ctx env k.Ast.key), k.Ast.descending)) keys, env))
          tuples
      in
      let cmp_keys (ka, _) (kb, _) =
        let rec go a b =
          match a, b with
          | [], [] -> 0
          | (xa, desc) :: ra, (xb, _) :: rb ->
            let c =
              match xa, xb with
              | [], [] -> 0
              | [], _ -> -1
              | _, [] -> 1
              | a0 :: _, b0 :: _ -> Value.atom_compare a0 b0
            in
            if c <> 0 then if desc then -c else c else go ra rb
          | _ -> 0
        in
        go ka kb
      in
      List.map snd (List.stable_sort cmp_keys decorated)
  in
  List.concat_map (fun env -> eval ctx env f.Ast.return) tuples

and eval_quant ctx env bs body ~exists : bool =
  let tuples =
    List.fold_left
      (fun envs (v, e) ->
        List.concat_map
          (fun env ->
            List.map (fun item -> Env.bind env v [ item ]) (eval ctx env e))
          envs)
      [ env ] bs
  in
  if exists then List.exists (fun env -> Value.to_bool (eval ctx env body)) tuples
  else List.for_all (fun env -> Value.to_bool (eval ctx env body)) tuples

and general_compare op (va : Value.t) (vb : Value.t) : bool =
  match op with
  | Ast.Is ->
    (* node identity, existentially over the two sequences *)
    List.exists
      (function
        | Value.Node n ->
          List.exists
            (function Value.Node m -> Xl_xml.Node.equal n m | Value.Atom _ -> false)
            vb
        | Value.Atom _ -> false)
      va
  | _ ->
  let atoms_a = Value.atomize va and atoms_b = Value.atomize vb in
  let holds a b =
    let c = Value.atom_compare a b in
    match op with
    | Ast.Eq -> Value.atom_equal a b
    | Ast.Ne -> not (Value.atom_equal a b)
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
    | Ast.Is -> assert false
  in
  List.exists (fun a -> List.exists (fun b -> holds a b) atoms_b) atoms_a

and eval_arith op va vb : Value.t =
  let num v =
    match List.filter_map Value.numeric_of_atom (Value.atomize v) with
    | [ n ] -> n
    | [] -> raise (Type_error "arithmetic on empty sequence")
    | _ -> raise (Type_error "arithmetic on a sequence")
  in
  let a = num va and b = num vb in
  let r =
    match op with
    | Ast.Add -> a +. b
    | Ast.Sub -> a -. b
    | Ast.Mul -> a *. b
    | Ast.Div -> a /. b
    | Ast.Mod -> Float.rem a b
  in
  Value.of_float r

(** Evaluate a closed query against a store. *)
let run ?(env = Env.empty) (ctx : ctx) (e : Ast.expr) : Value.t = eval ctx env e

(** Evaluate and serialize the result. *)
let run_to_string ?(env = Env.empty) (ctx : ctx) (e : Ast.expr) : string =
  let v = run ~env ctx e in
  String.concat ""
    (List.map
       (function
         | Value.Node n -> Serialize.node_to_string n
         | Value.Atom a -> Value.atom_to_string a)
       v)
