(** Simple child-axis paths with optional positional predicates,
    e.g. [a[1]/b/c[last()]] or [itemref/@item] — the paths [q] allowed
    inside the Rel2/Rel3 relationship patterns of 1-learnability
    (Section 6). *)

type position = First | Last | Nth of int

type step =
  | Elem of string * position option
  | Attr_step of string
  | Text_step

type t = step list

val elem : ?pos:position -> string -> step
val step_to_string : step -> string
val to_string : t -> string

val of_string : string -> t
(** Parse ["profile/@income"], ["bidder[1]/increase"], ["a/text()"]...
    Raises [Invalid_argument] on malformed positions. *)

val eval : t -> Xl_xml.Node.t -> Xl_xml.Node.t list
(** Child-axis evaluation from a context node, document order. *)

val to_path_expr : t -> Path_expr.t
(** The same path with positions dropped, as a regular path. *)
