(** Built-in function library.

    Covers the functions used by XMark and the XML Query Use Cases as
    exercised in the paper's experiments: aggregation, sequence tests,
    string functions and [data]. *)

exception Unknown_function of string
exception Bad_arity of string * int

let numeric v =
  List.filter_map Value.numeric_of_atom (Value.atomize v)

let one name = function
  | [ v ] -> v
  | args -> raise (Bad_arity (name, List.length args))

let two name = function
  | [ a; b ] -> (a, b)
  | args -> raise (Bad_arity (name, List.length args))

(** [apply name args] evaluates the builtin [name]. *)
let apply (name : string) (args : Value.t list) : Value.t =
  match name with
  | "count" -> Value.of_int (List.length (one name args))
  | "sum" -> Value.of_float (List.fold_left ( +. ) 0. (numeric (one name args)))
  | "avg" -> (
    match numeric (one name args) with
    | [] -> Value.empty
    | ns -> Value.of_float (List.fold_left ( +. ) 0. ns /. float_of_int (List.length ns)))
  | "min" -> (
    match numeric (one name args) with
    | [] -> Value.empty
    | n :: ns -> Value.of_float (List.fold_left min n ns))
  | "max" -> (
    match numeric (one name args) with
    | [] -> Value.empty
    | n :: ns -> Value.of_float (List.fold_left max n ns))
  | "data" ->
    List.map (fun a -> Value.Atom a) (Value.atomize (one name args))
  | "string" -> Value.of_string (Value.string_value (one name args))
  | "number" -> (
    match numeric (one name args) with
    | [ n ] -> Value.of_float n
    | _ -> Value.of_float Float.nan)
  | "distinct" | "distinct-values" ->
    (* distinct atomic values, first occurrence order *)
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun a ->
        let k = Value.atom_to_string a in
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.replace seen k ();
          Some (Value.Atom a)
        end)
      (Value.atomize (one name args))
  | "empty" -> Value.of_bool (one name args = [])
  | "exists" -> Value.of_bool (one name args <> [])
  | "not" -> Value.of_bool (not (Value.to_bool (one name args)))
  | "true" -> Value.of_bool true
  | "false" -> Value.of_bool false
  | "zero-or-one" -> (
    match one name args with
    | ([] | [ _ ]) as v -> v
    | _ -> failwith "zero-or-one: more than one item")
  | "contains" ->
    let a, b = two name args in
    let hay = Value.string_value a and needle = Value.string_value b in
    let n = String.length needle and h = String.length hay in
    let rec find i = i + n <= h && (String.sub hay i n = needle || find (i + 1)) in
    Value.of_bool (n = 0 || find 0)
  | "starts-with" ->
    let a, b = two name args in
    let hay = Value.string_value a and pre = Value.string_value b in
    Value.of_bool
      (String.length pre <= String.length hay
      && String.sub hay 0 (String.length pre) = pre)
  | "string-length" -> Value.of_int (String.length (Value.string_value (one name args)))
  | "concat" -> Value.of_string (String.concat "" (List.map Value.string_value args))
  | "name" -> (
    match one name args with
    | [ Value.Node n ] -> Value.of_string n.Xl_xml.Node.name
    | _ -> Value.of_string "")
  | "round" -> (
    match numeric (one name args) with
    | [ n ] -> Value.of_float (Float.round n)
    | _ -> Value.empty)
  | "floor" -> (
    match numeric (one name args) with
    | [ n ] -> Value.of_float (Float.floor n)
    | _ -> Value.empty)
  | "ceiling" -> (
    match numeric (one name args) with
    | [ n ] -> Value.of_float (Float.ceil n)
    | _ -> Value.empty)
  | "abs" -> (
    match numeric (one name args) with
    | [ n ] -> Value.of_float (Float.abs n)
    | _ -> Value.empty)
  | "substring" -> (
    match args with
    | [ s; start ] | [ s; start; _ ] ->
      let str = Value.string_value s in
      let from =
        match numeric start with [ f ] -> int_of_float f | _ -> 1
      in
      let len =
        match args with
        | [ _; _; l ] -> (
          match numeric l with [ f ] -> int_of_float f | _ -> 0)
        | _ -> String.length str - from + 1
      in
      let from = max 1 from in
      let len = max 0 (min len (String.length str - from + 1)) in
      if from > String.length str then Value.of_string ""
      else Value.of_string (String.sub str (from - 1) len)
    | _ -> raise (Bad_arity (name, List.length args)))
  | "upper-case" -> Value.of_string (String.uppercase_ascii (Value.string_value (one name args)))
  | "lower-case" -> Value.of_string (String.lowercase_ascii (Value.string_value (one name args)))
  | "normalize-space" ->
    let s = Value.string_value (one name args) in
    let words =
      String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
      |> List.filter (fun w -> w <> "")
    in
    Value.of_string (String.concat " " words)
  | "string-join" -> (
    match args with
    | [ seq; sep ] ->
      Value.of_string
        (String.concat (Value.string_value sep)
           (List.map Value.item_string seq))
    | _ -> raise (Bad_arity (name, List.length args)))
  | "boolean" -> Value.of_bool (Value.to_bool (one name args))
  | "reverse" -> List.rev (one name args)
  | "last-item" -> (
    match List.rev (one name args) with [] -> Value.empty | x :: _ -> [ x ])
  | _ -> raise (Unknown_function name)

(** Functions usable in the paper's Nested Drop Boxes (Section 9(1)). *)
let known name =
  match name with
  | "count" | "sum" | "avg" | "min" | "max" | "data" | "string" | "number"
  | "distinct" | "distinct-values" | "empty" | "exists" | "not" | "true" | "false"
  | "zero-or-one" | "contains" | "starts-with" | "string-length" | "concat"
  | "name" | "round" | "floor" | "ceiling" | "abs" | "substring" | "upper-case"
  | "lower-case" | "normalize-space" | "string-join" | "boolean" | "reverse"
  | "last-item" ->
    true
  | _ -> false
