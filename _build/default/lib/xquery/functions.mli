(** Built-in function library: the functions the XMark / XML Query Use
    Case workloads exercise (aggregation, sequence tests, string
    functions, [data]). *)

exception Unknown_function of string
exception Bad_arity of string * int

val apply : string -> Value.t list -> Value.t
(** Evaluate a builtin by name. *)

val known : string -> bool
(** Is this name usable in the paper's Nested Drop Boxes (Section 9(1))? *)
