(** Simple child-axis paths with optional positional predicates,
    e.g. [a[1]/b/c[last()]] or [itemref/@item].

    These are the paths [q] allowed inside the Rel2/Rel3 relationship
    patterns of 1-learnability (Section 6): child axis plus optional
    position numbers or [last()]. *)

type position = First | Last | Nth of int

type step =
  | Elem of string * position option
  | Attr_step of string
  | Text_step

type t = step list

let elem ?pos name = Elem (name, pos)

let step_to_string = function
  | Elem (n, None) -> n
  | Elem (n, Some First) -> n ^ "[1]"
  | Elem (n, Some Last) -> n ^ "[last()]"
  | Elem (n, Some (Nth k)) -> Printf.sprintf "%s[%d]" n k
  | Attr_step a -> "@" ^ a
  | Text_step -> "text()"

let to_string (p : t) = String.concat "/" (List.map step_to_string p)

(** Evaluate from a context node; child axis only, document order. *)
let eval (p : t) (from : Xl_xml.Node.t) : Xl_xml.Node.t list =
  let open Xl_xml in
  let step nodes s =
    List.concat_map
      (fun n ->
        match s with
        | Attr_step a -> (
          match Node.attribute n a with Some at -> [ at ] | None -> [])
        | Text_step -> List.filter Node.is_text n.Node.children
        | Elem (name, pos) -> (
          let kids =
            List.filter
              (fun c -> Node.is_element c && String.equal c.Node.name name)
              n.Node.children
          in
          match pos with
          | None -> kids
          | Some First -> (match kids with [] -> [] | k :: _ -> [ k ])
          | Some Last -> (
            match List.rev kids with [] -> [] | k :: _ -> [ k ])
          | Some (Nth k) ->
            if k >= 1 && k <= List.length kids then [ List.nth kids (k - 1) ] else []))
      nodes
  in
  List.fold_left step [ from ] p

(** The same path as a (position-free) regular path, for printing learned
    conditions inside generated queries. *)
let to_path_expr (p : t) : Path_expr.t =
  Path_expr.seq
    (List.map
       (function
         | Elem (n, _) -> Path_expr.child (Path_expr.Tag n)
         | Attr_step a -> Path_expr.child (Path_expr.Attr a)
         | Text_step -> Path_expr.child Path_expr.Text_node)
       p)

(** Parse a simple path from its textual form, e.g.
    ["profile/@income"], ["bidder[1]/increase"], ["a[last()]/text()"]. *)
let of_string (s : string) : t =
  if String.trim s = "" then []
  else
    List.map
      (fun part ->
        if String.length part > 0 && part.[0] = '@' then
          Attr_step (String.sub part 1 (String.length part - 1))
        else if String.equal part "text()" then Text_step
        else
          match String.index_opt part '[' with
          | None -> Elem (part, None)
          | Some i ->
            let name = String.sub part 0 i in
            let inside = String.sub part (i + 1) (String.length part - i - 2) in
            let pos =
              if String.equal inside "last()" then Last
              else
                match int_of_string_opt inside with
                | Some 1 -> First
                | Some k -> Nth k
                | None -> invalid_arg ("Simple_path.of_string: bad position " ^ inside)
            in
            Elem (name, Some pos))
      (String.split_on_char '/' s)
