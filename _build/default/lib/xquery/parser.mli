(** Parser for the XQuery subset (character-level recursive descent).

    Supported: FLWOR with [for]/[let]/[where]/[order by]/[return],
    quantifiers, [if/then/else], or/and/not, general comparisons
    (including [is], node identity), arithmetic, regular location paths
    ([//], alternation, wildcards, positional predicates on simple
    paths), [document("uri")], literals, function calls, XQuery comments
    and direct element constructors. *)

exception Parse_error of string * int
(** message, byte position *)

val parse : string -> Ast.expr
(** Parse a complete query; rejects trailing input. *)

val parse_path_string : string -> Path_expr.t
(** Parse just a path, e.g. ["/site/regions/(europe|africa)/item"]. *)
