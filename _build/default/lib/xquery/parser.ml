(** Parser for the XQuery subset.

    Character-level recursive descent (the [<] operator / constructor
    ambiguity is resolved by syntactic position, as in real XQuery
    grammars).  Supported:

    - FLWOR: [for $v in e, ...] [let $v := e] [where e]
      [order by k (descending)?, ...] [return e]
    - quantifiers: [some/every $v in e, ... satisfies e]
    - [if (e) then e else e]
    - or/and/not, general comparisons [= != < <= > >=], arithmetic
    - regular location paths: [/a//b/(c|d)/@id/text()] with [*] and [@*],
      positional predicates [a[1]], [a[last()]]
    - [document("uri")], [$v], literals, function calls
    - direct element constructors [<a x="{e}">{e} text <b/></a>] *)

exception Parse_error of string * int

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (msg, st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | Some '(' when peek2 st = Some ':' ->
      (* XQuery comment (: ... :) *)
      let rec find i depth =
        if i + 1 >= String.length st.src then error st "unterminated comment"
        else if st.src.[i] = ':' && st.src.[i + 1] = ')' then
          if depth = 1 then st.pos <- i + 2 else find (i + 2) (depth - 1)
        else if st.src.[i] = '(' && st.src.[i + 1] = ':' then find (i + 2) (depth + 1)
        else find (i + 1) depth
      in
      find (st.pos + 2) 1
    | _ -> continue := false
  done

let is_name_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> error st "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* keyword lookahead without consuming *)
let at_keyword st kw =
  skip_ws st;
  looking_at st kw
  && (let after = st.pos + String.length kw in
      after >= String.length st.src || not (is_name_char st.src.[after]))

let eat_keyword st kw =
  if at_keyword st kw then begin
    st.pos <- st.pos + String.length kw;
    true
  end
  else false

let expect_keyword st kw =
  if not (eat_keyword st kw) then error st (Printf.sprintf "expected %S" kw)

let expect st s =
  skip_ws st;
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st (Printf.sprintf "expected %S" s)

let eat st s =
  skip_ws st;
  if looking_at st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let read_string_literal st =
  skip_ws st;
  match peek st with
  | Some (('"' | '\'') as q) ->
    advance st;
    let start = st.pos in
    while (match peek st with Some c when c <> q -> true | _ -> false) do
      advance st
    done;
    let s = String.sub st.src start (st.pos - start) in
    expect st (String.make 1 q);
    s
  | _ -> error st "expected a string literal"

let read_var st =
  expect st "$";
  read_name st

(* ---- paths ---------------------------------------------------------- *)

type raw_step =
  | Rtest of Path_expr.test * Simple_path.position option
  | Rgroup of raw_path list  (** ( p | p | ... ) *)

and raw_path = (bool * raw_step) list  (** (descendant?, step) *)

let rec parse_raw_path st ~first_desc : raw_path =
  let step = parse_raw_step st in
  let rest = parse_raw_path_rest st in
  (first_desc, step) :: rest

and parse_raw_path_rest st : raw_path =
  if looking_at st "//" then begin
    expect st "//";
    let step = parse_raw_step st in
    (true, step) :: parse_raw_path_rest st
  end
  else if looking_at st "/" && peek2 st <> Some '>' then begin
    expect st "/";
    let step = parse_raw_step st in
    (false, step) :: parse_raw_path_rest st
  end
  else []

and parse_raw_step st : raw_step =
  skip_ws st;
  if looking_at st "(" then begin
    expect st "(";
    let alts = ref [ parse_raw_path st ~first_desc:false ] in
    while eat st "|" do
      alts := parse_raw_path st ~first_desc:false :: !alts
    done;
    expect st ")";
    Rgroup (List.rev !alts)
  end
  else begin
    let test =
      if eat st "@*" then Path_expr.Any_attr
      else if eat st "@" then Path_expr.Attr (read_name st)
      else if looking_at st "*" then begin
        advance st;
        Path_expr.Any_elem
      end
      else if looking_at st "text()" then begin
        st.pos <- st.pos + 6;
        Path_expr.Text_node
      end
      else Path_expr.Tag (read_name st)
    in
    let pos =
      if looking_at st "[" then begin
        expect st "[";
        let p =
          if eat st "last()" then Simple_path.Last
          else begin
            skip_ws st;
            let start = st.pos in
            while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
              advance st
            done;
            if st.pos = start then error st "expected a position";
            let n = int_of_string (String.sub st.src start (st.pos - start)) in
            if n = 1 then Simple_path.First else Simple_path.Nth n
          end
        in
        expect st "]";
        Some p
      end
      else None
    in
    Rtest (test, pos)
  end

let rec raw_has_position (p : raw_path) =
  List.exists
    (fun (_, s) ->
      match s with
      | Rtest (_, Some _) -> true
      | Rtest (_, None) -> false
      | Rgroup alts -> List.exists raw_has_position alts)
    p

let rec raw_to_path_expr (p : raw_path) : Path_expr.t =
  Path_expr.seq
    (List.map
       (fun (desc, s) ->
         match s with
         | Rtest (test, _) ->
           if desc then Path_expr.desc test else Path_expr.child test
         | Rgroup alts ->
           let alt_paths = List.map raw_to_path_expr alts in
           let grouped = Path_expr.alt alt_paths in
           if desc then
             Path_expr.Seq
               (Path_expr.Star (Path_expr.child Path_expr.Any_elem), grouped)
           else grouped)
       p)

let raw_to_simple_path (p : raw_path) st : Simple_path.t =
  List.map
    (fun (desc, s) ->
      if desc then error st "positional predicate mixed with //";
      match s with
      | Rtest (Path_expr.Tag n, pos) -> Simple_path.Elem (n, pos)
      | Rtest (Path_expr.Attr a, None) -> Simple_path.Attr_step a
      | Rtest (Path_expr.Text_node, None) -> Simple_path.Text_step
      | _ -> error st "positional predicate in a non-simple path")
    p

let attach_path (base : Ast.expr) (raw : raw_path) st : Ast.expr =
  if raw_has_position raw then Ast.Simple (base, raw_to_simple_path raw st)
  else Ast.Path (base, raw_to_path_expr raw)

(* ---- expressions ---------------------------------------------------- *)

let rec parse_expr st : Ast.expr =
  skip_ws st;
  if at_keyword st "for" || at_keyword st "let" then parse_flwor st
  else if at_keyword st "some" then parse_quant st ~exists:true
  else if at_keyword st "every" then parse_quant st ~exists:false
  else if at_keyword st "if" then parse_if st
  else parse_or st

and parse_flwor st : Ast.expr =
  let for_ = ref [] and let_ = ref [] in
  let rec clauses () =
    if eat_keyword st "for" then begin
      let rec bindings () =
        let v = (skip_ws st; read_var st) in
        expect_keyword st "in";
        let e = parse_expr st in
        for_ := !for_ @ [ (v, e) ];
        if eat st "," then bindings ()
      in
      bindings ();
      clauses ()
    end
    else if eat_keyword st "let" then begin
      let v = (skip_ws st; read_var st) in
      expect st ":=";
      let e = parse_expr st in
      let_ := !let_ @ [ (v, e) ];
      clauses ()
    end
  in
  clauses ();
  let where = if eat_keyword st "where" then Some (parse_expr st) else None in
  let order_by =
    if eat_keyword st "order" then begin
      expect_keyword st "by";
      let rec keys acc =
        let k = parse_or st in
        let descending = eat_keyword st "descending" in
        ignore (eat_keyword st "ascending");
        let acc = acc @ [ { Ast.key = k; descending } ] in
        if eat st "," then keys acc else acc
      in
      keys []
    end
    else []
  in
  expect_keyword st "return";
  let return = parse_expr st in
  Ast.Flwor { for_ = !for_; let_ = !let_; where; order_by; return }

and parse_quant st ~exists : Ast.expr =
  ignore (eat_keyword st "some" || eat_keyword st "every");
  let rec bindings acc =
    let v = (skip_ws st; read_var st) in
    expect_keyword st "in";
    let e = parse_expr st in
    let acc = acc @ [ (v, e) ] in
    if eat st "," then bindings acc else acc
  in
  let bs = bindings [] in
  expect_keyword st "satisfies";
  let body = parse_expr st in
  if exists then Ast.Some_ (bs, body) else Ast.Every (bs, body)

and parse_if st : Ast.expr =
  expect_keyword st "if";
  expect st "(";
  let c = parse_expr st in
  expect st ")";
  expect_keyword st "then";
  let t = parse_expr st in
  expect_keyword st "else";
  let f = parse_expr st in
  Ast.If (c, t, f)

and parse_or st : Ast.expr =
  let a = parse_and st in
  if eat_keyword st "or" then Ast.Or (a, parse_or st) else a

and parse_and st : Ast.expr =
  let a = parse_cmp st in
  if eat_keyword st "and" then Ast.And (a, parse_and st) else a

and parse_cmp st : Ast.expr =
  let a = parse_add st in
  skip_ws st;
  let op =
    if eat st "!=" then Some Ast.Ne
    else if eat st "<=" then Some Ast.Le
    else if eat st ">=" then Some Ast.Ge
    else if eat st "=" then Some Ast.Eq
    else if looking_at st "<" && peek2 st <> Some '/' && not (is_constructor_start st) then begin
      advance st;
      Some Ast.Lt
    end
    else if eat st ">" then Some Ast.Gt
    else if eat_keyword st "eq" then Some Ast.Eq
    else if eat_keyword st "ne" then Some Ast.Ne
    else if eat_keyword st "lt" then Some Ast.Lt
    else if eat_keyword st "le" then Some Ast.Le
    else if eat_keyword st "gt" then Some Ast.Gt
    else if eat_keyword st "ge" then Some Ast.Ge
    else if eat_keyword st "is" then Some Ast.Is
    else None
  in
  match op with Some op -> Ast.Cmp (op, a, parse_add st) | None -> a

and parse_add st : Ast.expr =
  let rec loop a =
    skip_ws st;
    if eat st "+" then loop (Ast.Arith (Ast.Add, a, parse_mul st))
    else if
      looking_at st "-" && peek2 st <> Some '-'
    then begin
      advance st;
      loop (Ast.Arith (Ast.Sub, a, parse_mul st))
    end
    else a
  in
  loop (parse_mul st)

and parse_mul st : Ast.expr =
  let rec loop a =
    skip_ws st;
    if eat st "*" then loop (Ast.Arith (Ast.Mul, a, parse_union st))
    else if eat_keyword st "div" then loop (Ast.Arith (Ast.Div, a, parse_union st))
    else if eat_keyword st "mod" then loop (Ast.Arith (Ast.Mod, a, parse_union st))
    else a
  in
  loop (parse_union st)

and parse_union st : Ast.expr =
  let a = parse_path st in
  if eat_keyword st "union" then Ast.Union (a, parse_union st) else a

and is_constructor_start st =
  (* "<" followed directly by a name-start char begins a constructor *)
  looking_at st "<"
  && (match peek2 st with Some c when is_name_start c -> true | _ -> false)

and parse_path st : Ast.expr =
  skip_ws st;
  if looking_at st "//" then begin
    expect st "//";
    let raw = parse_raw_path st ~first_desc:true in
    attach_path (Ast.Doc_root None) raw st
  end
  else if looking_at st "/" && (match peek2 st with Some c -> is_name_start c || c = '(' || c = '@' || c = '*' | None -> false) then begin
    expect st "/";
    let raw = parse_raw_path st ~first_desc:false in
    attach_path (Ast.Doc_root None) raw st
  end
  else begin
    let base = parse_primary st in
    (* path continuation *)
    if looking_at st "//" then begin
      expect st "//";
      let raw = parse_raw_path st ~first_desc:true in
      attach_path base raw st
    end
    else if looking_at st "/" && (match peek2 st with Some c -> is_name_start c || c = '(' || c = '@' || c = '*' || c = 't' | None -> false) then begin
      expect st "/";
      let raw = parse_raw_path st ~first_desc:false in
      attach_path base raw st
    end
    else base
  end

and parse_primary st : Ast.expr =
  skip_ws st;
  match peek st with
  | Some '$' -> Ast.Var (read_var st)
  | Some ('"' | '\'') -> Ast.Literal (Value.Str (read_string_literal st))
  | Some ('0' .. '9') ->
    let start = st.pos in
    while
      match peek st with Some ('0' .. '9' | '.') -> true | _ -> false
    do
      advance st
    done;
    Ast.Literal (Value.Num (float_of_string (String.sub st.src start (st.pos - start))))
  | Some '(' ->
    expect st "(";
    if eat st ")" then Ast.Sequence []
    else begin
      let e = parse_expr st in
      let items = ref [ e ] in
      while eat st "," do
        items := parse_expr st :: !items
      done;
      expect st ")";
      match !items with [ single ] -> single | many -> Ast.Sequence (List.rev many)
    end
  | Some '<' when is_constructor_start st -> parse_constructor st
  | Some c when is_name_start c ->
    let name = read_name st in
    skip_ws st;
    if looking_at st "(" then begin
      expect st "(";
      if name = "document" || name = "doc" then begin
        if eat st ")" then Ast.Doc_root None
        else begin
          let uri = read_string_literal st in
          expect st ")";
          Ast.Doc_root (Some uri)
        end
      end
      else if eat st ")" then
        if name = "true" then Ast.Literal (Value.Bool true)
        else if name = "false" then Ast.Literal (Value.Bool false)
        else Ast.Call (name, [])
      else begin
        let args = ref [ parse_expr st ] in
        while eat st "," do
          args := parse_expr st :: !args
        done;
        expect st ")";
        if name = "not" then Ast.Not (List.hd (List.rev !args))
        else Ast.Call (name, List.rev !args)
      end
    end
    else
      (* a bare name is a relative child step from nothing: treat it as a
         path over the context — unsupported; report clearly *)
      error st (Printf.sprintf "unexpected bare name %S (paths must start with /, $var or document())" name)
  | _ -> error st "expected an expression"

and parse_constructor st : Ast.expr =
  expect st "<";
  let tag = read_name st in
  let attrs = ref [] in
  let rec parse_attrs () =
    skip_ws st;
    match peek st with
    | Some c when is_name_start c ->
      let name = read_name st in
      expect st "=";
      skip_ws st;
      let quote =
        match peek st with
        | Some (('"' | '\'') as q) ->
          advance st;
          q
        | _ -> error st "expected attribute value"
      in
      (* value: mix of literal text and {expr} *)
      let parts = ref [] in
      let buf = Buffer.create 16 in
      let flush_text () =
        if Buffer.length buf > 0 then begin
          parts := Ast.Literal (Value.Str (Buffer.contents buf)) :: !parts;
          Buffer.clear buf
        end
      in
      let rec loop () =
        match peek st with
        | None -> error st "unterminated attribute"
        | Some c when c = quote -> advance st
        | Some '{' ->
          advance st;
          flush_text ();
          let e = parse_expr st in
          expect st "}";
          parts := e :: !parts;
          loop ()
        | Some c ->
          advance st;
          Buffer.add_char buf c;
          loop ()
      in
      loop ();
      flush_text ();
      let value =
        match List.rev !parts with
        | [] -> Ast.Literal (Value.Str "")
        | [ e ] -> e
        | many -> Ast.Call ("concat", many)
      in
      attrs := Ast.Attr_c (name, value) :: !attrs;
      parse_attrs ()
    | _ -> ()
  in
  parse_attrs ();
  skip_ws st;
  if eat st "/>" then Ast.Elem (tag, List.rev !attrs)
  else begin
    expect st ">";
    let contents = ref [] in
    let buf = Buffer.create 16 in
    let flush_text () =
      let s = Buffer.contents buf in
      Buffer.clear buf;
      let trimmed = String.trim s in
      if trimmed <> "" then contents := Ast.Literal (Value.Str trimmed) :: !contents
    in
    let rec loop () =
      if looking_at st "</" then ()
      else
        match peek st with
        | None -> error st "unterminated element constructor"
        | Some '{' ->
          advance st;
          flush_text ();
          let e = parse_expr st in
          let items = ref [ e ] in
          while eat st "," do
            items := parse_expr st :: !items
          done;
          expect st "}";
          let e =
            match !items with [ one ] -> one | many -> Ast.Sequence (List.rev many)
          in
          contents := e :: !contents;
          loop ()
        | Some '<' when is_constructor_start st ->
          flush_text ();
          contents := parse_constructor st :: !contents;
          loop ()
        | Some c ->
          advance st;
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    flush_text ();
    expect st "</";
    skip_ws st;
    (* allow the paper's abbreviation </> *)
    (if looking_at st ">" then ()
     else
       let close = read_name st in
       if close <> tag then
         error st (Printf.sprintf "mismatched </%s> for <%s>" close tag));
    expect st ">";
    Ast.Elem (tag, List.rev !attrs @ List.rev !contents)
  end

(** Parse a complete query. *)
let parse (src : string) : Ast.expr =
  let st = { src; pos = 0 } in
  let e = parse_expr st in
  skip_ws st;
  if st.pos <> String.length st.src then error st "trailing input";
  e

let parse_path_string (src : string) : Path_expr.t =
  let st = { src; pos = 0 } in
  skip_ws st;
  let first_desc = looking_at st "//" in
  if first_desc then expect st "//" else if looking_at st "/" then expect st "/";
  let raw = parse_raw_path st ~first_desc in
  skip_ws st;
  if st.pos <> String.length st.src then error st "trailing input in path";
  raw_to_path_expr raw
