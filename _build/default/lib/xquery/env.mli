(** Variable environments. *)

type t

val empty : t
val bind : t -> string -> Value.t -> t
val find : t -> string -> Value.t option

val find_exn : t -> string -> Value.t
(** Raises [Invalid_argument] when unbound. *)

val bindings : t -> (string * Value.t) list
val of_list : (string * Value.t) list -> t
