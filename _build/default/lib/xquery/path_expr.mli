(** Regular location paths — the paper's central path construct.

    Location paths whose step structure is a regular expression over
    tags, e.g. [/site/regions/(europe|africa)/item] or [/site//name].
    Paths are evaluated over tag-path words, so selection reduces to
    running a DFA while walking the tree (see {!Eval}). *)

type test =
  | Tag of string
  | Any_elem  (** [*] *)
  | Attr of string  (** [@name] *)
  | Any_attr  (** [@*] *)
  | Text_node  (** [text()] *)

type axis =
  | Child  (** [/] *)
  | Desc  (** [//] *)

type t =
  | Step of axis * test
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Eps

val child : test -> t
val desc : test -> t

val seq : t list -> t
val alt : t list -> t
(** Raises [Invalid_argument] on the empty list. *)

val steps : string list -> t
(** [steps ["site"; "item"]] is [/site/item]. *)

val test_symbol : test -> string option
(** The path symbol a concrete test matches ([None] for wildcards). *)

val to_regex : Xl_automata.Alphabet.t -> t -> Xl_automata.Regex.t
(** Compile over an alphabet.  Wildcards expand to the alternation of
    the currently interned symbols, so intern the document's symbols
    first (see {!Eval.intern_path_symbols}). *)

val to_string : t -> string
(** XPath-flavoured rendering, e.g. ["/site/regions/(europe|africa)/item"]. *)

val equal : t -> t -> bool
