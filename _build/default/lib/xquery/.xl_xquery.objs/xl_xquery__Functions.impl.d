lib/xquery/functions.ml: Float Hashtbl List String Value Xl_xml
