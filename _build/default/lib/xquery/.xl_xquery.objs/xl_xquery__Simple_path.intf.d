lib/xquery/simple_path.mli: Path_expr Xl_xml
