lib/xquery/eval.ml: Array Ast Doc Env Float Frag Functions Hashtbl List Node Path_expr Serialize Simple_path Store String Value Xl_automata Xl_xml
