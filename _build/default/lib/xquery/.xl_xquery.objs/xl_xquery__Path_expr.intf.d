lib/xquery/path_expr.mli: Xl_automata
