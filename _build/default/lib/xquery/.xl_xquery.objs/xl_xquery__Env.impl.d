lib/xquery/env.ml: List Map Printf String Value
