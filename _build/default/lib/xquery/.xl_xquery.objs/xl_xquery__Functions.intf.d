lib/xquery/functions.mli: Value
