lib/xquery/printer.ml: Ast Buffer List Path_expr Printf Simple_path String Value
