lib/xquery/parser.mli: Ast Path_expr
