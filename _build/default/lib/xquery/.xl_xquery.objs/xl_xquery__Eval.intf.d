lib/xquery/eval.mli: Ast Env Hashtbl Path_expr Value Xl_automata Xl_xml
