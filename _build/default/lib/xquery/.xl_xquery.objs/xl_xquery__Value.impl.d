lib/xquery/value.ml: Either Float List Printf String Xl_xml
