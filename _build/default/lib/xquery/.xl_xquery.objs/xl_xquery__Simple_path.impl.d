lib/xquery/simple_path.ml: List Node Path_expr Printf String Xl_xml
