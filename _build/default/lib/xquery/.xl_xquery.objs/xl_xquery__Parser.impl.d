lib/xquery/parser.ml: Ast Buffer List Path_expr Printf Simple_path String Value
