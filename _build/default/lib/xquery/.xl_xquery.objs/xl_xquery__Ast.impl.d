lib/xquery/ast.ml: List Path_expr Set Simple_path String Value
