lib/xquery/value.mli: Xl_xml
