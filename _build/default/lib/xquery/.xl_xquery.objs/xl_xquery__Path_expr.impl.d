lib/xquery/path_expr.ml: Alphabet List Regex String Xl_automata
