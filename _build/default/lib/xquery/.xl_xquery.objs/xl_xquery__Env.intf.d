lib/xquery/env.mli: Value
