lib/xquery/printer.mli: Ast Value
