(** Regular location paths.

    The paper's central path construct: location paths whose step
    structure is a regular expression over tags, e.g.
    [/site/regions/(europe|africa)/item] or [/site//name].  A path is
    evaluated over tag-path words, so selection reduces to running a DFA
    while walking the tree (see {!Eval}).

    Paths are either absolute (from a document root) or relative (from a
    variable binding). *)

type test =
  | Tag of string
  | Any_elem  (** [*] *)
  | Attr of string  (** [@name] *)
  | Any_attr  (** [@*] *)
  | Text_node  (** [text()] *)

type axis =
  | Child  (** [/] *)
  | Desc  (** [//] — descendant *)

type t =
  | Step of axis * test
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Eps

let child test = Step (Child, test)
let desc test = Step (Desc, test)

let rec seq = function
  | [] -> Eps
  | [ p ] -> p
  | p :: rest -> Seq (p, seq rest)

let alt = function
  | [] -> invalid_arg "Path_expr.alt: empty"
  | p :: rest -> List.fold_left (fun a b -> Alt (a, b)) p rest

(** Convenience: [steps ["site"; "regions"; "item"]] is /site/regions/item. *)
let steps tags = seq (List.map (fun t -> child (Tag t)) tags)

let test_symbol = function
  | Tag t -> Some t
  | Attr a -> Some ("@" ^ a)
  | Text_node -> Some "#text"
  | Any_elem | Any_attr -> None

(** Compile to a symbol regex over [alphabet].  [Any_elem] expands to the
    alternation of all element symbols currently interned (symbols not
    starting with '@' or '#'); the caller must intern the document's
    symbols first. *)
let to_regex (alphabet : Xl_automata.Alphabet.t) (p : t) : Xl_automata.Regex.t =
  let open Xl_automata in
  let elem_syms () =
    List.filteri (fun _ _ -> true) (Alphabet.symbols alphabet)
    |> List.filter (fun s ->
           String.length s > 0 && s.[0] <> '@' && s.[0] <> '#')
    |> List.map (fun s -> Regex.Sym (Alphabet.intern alphabet s))
  in
  let attr_syms () =
    Alphabet.symbols alphabet
    |> List.filter (fun s -> String.length s > 0 && s.[0] = '@')
    |> List.map (fun s -> Regex.Sym (Alphabet.intern alphabet s))
  in
  let test_regex = function
    | Tag t -> Regex.Sym (Alphabet.intern alphabet t)
    | Attr a -> Regex.Sym (Alphabet.intern alphabet ("@" ^ a))
    | Text_node -> Regex.Sym (Alphabet.intern alphabet "#text")
    | Any_elem -> Regex.alt (elem_syms ())
    | Any_attr -> Regex.alt (attr_syms ())
  in
  let rec conv = function
    | Step (Child, test) -> test_regex test
    | Step (Desc, test) ->
      (* //t  =  (any element)* t *)
      Regex.Seq (Regex.Star (Regex.alt (elem_syms ())), test_regex test)
    | Seq (a, b) -> Regex.Seq (conv a, conv b)
    | Alt (a, b) -> Regex.Alt (conv a, conv b)
    | Star a -> Regex.Star (conv a)
    | Eps -> Regex.Eps
  in
  conv p

let rec to_string_aux prec p =
  match p with
  | Eps -> ""
  | Step (Child, test) -> "/" ^ test_to_string test
  | Step (Desc, test) -> "//" ^ test_to_string test
  | Seq (a, b) ->
    let s = to_string_aux 2 a ^ to_string_aux 2 b in
    if prec > 2 then "(" ^ s ^ ")" else s
  | Alt (a, b) ->
    (* the paper prints alternation inside one step: /(europe|africa) *)
    let strip s = if String.length s > 0 && s.[0] = '/' then String.sub s 1 (String.length s - 1) else s in
    "/(" ^ strip (to_string_aux 1 a) ^ "|" ^ strip (to_string_aux 1 b) ^ ")"
  | Star a -> "(" ^ to_string_aux 3 a ^ ")*"

and test_to_string = function
  | Tag t -> t
  | Any_elem -> "*"
  | Attr a -> "@" ^ a
  | Any_attr -> "@*"
  | Text_node -> "text()"

let to_string p = to_string_aux 0 p

let rec equal a b =
  match a, b with
  | Eps, Eps -> true
  | Step (ax, t), Step (ax', t') -> ax = ax' && t = t'
  | Seq (a1, a2), Seq (b1, b2) | Alt (a1, a2), Alt (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | Star a, Star b -> equal a b
  | _ -> false
