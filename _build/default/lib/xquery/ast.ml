(** Abstract syntax of the XQuery subset.

    The subset covers what the paper's learnable classes and the XMark /
    XML Query Use Case workloads need: FLWOR expressions, quantifiers,
    regular location paths, element construction, general comparisons,
    arithmetic, and built-in functions. *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge | Is  (** [Is] is node identity — the paper's "v1 is v2" *)

type arith_op = Add | Sub | Mul | Div | Mod

type expr =
  | Literal of Value.atom
  | Sequence of expr list  (** [(e1, e2, ...)] *)
  | Var of string
  | Doc_root of string option
      (** [document("uri")]; [None] is the default document *)
  | Path of expr * Path_expr.t  (** [e/regular-path] *)
  | Simple of expr * Simple_path.t  (** [e/a[1]/b] — positional path *)
  | Flwor of flwor
  | Some_ of binding list * expr  (** [some $v in e satisfies e'] *)
  | Every of binding list * expr
  | If of expr * expr * expr
  | Elem of string * expr list  (** element constructor *)
  | Attr_c of string * expr  (** attribute constructor *)
  | Text_c of expr  (** text constructor *)
  | Cmp of cmp_op * expr * expr
  | Arith of arith_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Call of string * expr list
  | Union of expr * expr
      (** node-sequence union, document order, duplicates removed *)

and binding = string * expr  (** [$v in e] *)

and order_key = { key : expr; descending : bool }

and flwor = {
  for_ : binding list;
  let_ : (string * expr) list;
  where : expr option;
  order_by : order_key list;
  return : expr;
}

let flwor ?(for_ = []) ?(let_ = []) ?where ?(order_by = []) return =
  Flwor { for_; let_; where; order_by; return }

(** [for $v in e return e'] with a single binding. *)
let for1 v e ?where ?(order_by = []) ret =
  Flwor { for_ = [ (v, e) ]; let_ = []; where; order_by; return = ret }

let str s = Literal (Value.Str s)
let num f = Literal (Value.Num f)
let int i = Literal (Value.Num (float_of_int i))
let bool b = Literal (Value.Bool b)

(** [root/path] — absolute path from the default document. *)
let abs_path p = Path (Doc_root None, p)

(** [$v/path]. *)
let var_path v p = Path (Var v, p)

let call name args = Call (name, args)

(** Conjunction of a list of boolean expressions ([true] when empty). *)
let conj = function
  | [] -> bool true
  | e :: rest -> List.fold_left (fun a b -> And (a, b)) e rest

(** Free variables of an expression (used by class analysis). *)
let free_vars (e : expr) : string list =
  let module SS = Set.Make (String) in
  let rec go bound acc e =
    match e with
    | Var v -> if SS.mem v bound then acc else SS.add v acc
    | Literal _ | Doc_root _ -> acc
    | Sequence es -> List.fold_left (go bound) acc es
    | Path (e, _) | Simple (e, _) | Text_c e | Attr_c (_, e) | Not e -> go bound acc e
    | Elem (_, es) -> List.fold_left (go bound) acc es
    | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) | Union (a, b) ->
      go bound (go bound acc a) b
    | If (c, t, f) -> go bound (go bound (go bound acc c) t) f
    | Call (_, es) -> List.fold_left (go bound) acc es
    | Some_ (bs, body) | Every (bs, body) ->
      let bound', acc' =
        List.fold_left
          (fun (bd, ac) (v, e) -> (SS.add v bd, go bd ac e))
          (bound, acc) bs
      in
      go bound' acc' body
    | Flwor f ->
      let bound', acc' =
        List.fold_left
          (fun (bd, ac) (v, e) -> (SS.add v bd, go bd ac e))
          (bound, acc) f.for_
      in
      let bound'', acc'' =
        List.fold_left
          (fun (bd, ac) (v, e) -> (SS.add v bd, go bd ac e))
          (bound', acc') f.let_
      in
      let acc3 =
        match f.where with None -> acc'' | Some w -> go bound'' acc'' w
      in
      let acc4 =
        List.fold_left (fun ac k -> go bound'' ac k.key) acc3 f.order_by
      in
      go bound'' acc4 f.return
  in
  SS.elements (go SS.empty SS.empty e)
