(* The resumable learner state machine (lib/core/machine.ml):

   - replay determinism: every (question, answer) pair of a fig16 run,
     re-driven through Machine.step from the transcript, reproduces the
     hypothesis query and the interaction counts byte-for-byte — on both
     Figure-16 suites and on the 25-seed fuzz corpus, sequential and
     against a 4-domain pool;
   - suspend/resume: snapshotting at every k-th `Ask (k in {1,3,7}),
     restoring into a fresh machine and finishing yields the same final
     query and the same Stats (mq and auto_known included) as the
     uninterrupted run;
   - corruption: flipping any single byte of a snapshot (and truncating
     it) raises Machine.Corrupt — never a silently wrong answer;
   - repair-sweep state: a machine suspended while phase = Repairing
     resumes inside the same sweep (the spare-join fixture, whose
     verification sweep must restore a minimized-away join);
   - stale forks: stepping an old machine value whose continuation was
     consumed by a newer step transparently rebuilds by replay;
   - shape validation: a mis-shaped answer raises Invalid_argument and
     leaves the machine usable.

   On a replay mismatch the failing transcript is dumped to
   MACHINE_replay_failure.txt (uploaded as a CI artifact). *)

module M = Xl_core.Machine
module Learn = Xl_core.Learn
module Stats = Xl_core.Stats
module Scenario = Xl_core.Scenario
module Pool = Xl_exec.Pool
module Store = Xl_xml.Store
module Case = Xl_fuzz.Case

let seed = 20040301

(* ---------- drivers ----------------------------------------------------- *)

(* Drive a machine to completion with its own oracle teacher, recording
   the transcript.  Each machine must be driven by its own teacher: the
   oracle's condition-box queues are per-run state. *)
let record m =
  let teacher = M.oracle_teacher m in
  let rec go acc m =
    match M.outcome m with
    | `Done r -> (r, List.rev acc)
    | `Ask q ->
      let a = M.answer_with teacher q in
      go ((q, a) :: acc) (snd (M.step m a))
  in
  go [] m

let dump_transcript path transcript =
  let oc = open_out path in
  List.iteri
    (fun i (q, a) ->
      Printf.fprintf oc "%4d  %s\n      -> %s\n" i (M.question_to_string q)
        (M.answer_to_string a))
    transcript;
  close_out oc

(* Re-drive a fresh machine from a recorded transcript; on divergence,
   dump the transcript for the CI artifact and fail. *)
let replay_transcript ?config ~what scenario transcript =
  let fail_with fmt =
    Printf.ksprintf
      (fun msg ->
        dump_transcript "MACHINE_replay_failure.txt" transcript;
        Alcotest.failf "%s: %s (transcript in MACHINE_replay_failure.txt)" what
          msg)
      fmt
  in
  let rec go m = function
    | [] -> m
    | (q_rec, a) :: rest -> (
      match M.outcome m with
      | `Done _ -> fail_with "machine finished before the transcript ended"
      | `Ask q ->
        if not (String.equal (M.question_to_string q) (M.question_to_string q_rec))
        then
          fail_with "question diverged at step %d: asked %S, recorded %S"
            (M.steps m) (M.question_to_string q) (M.question_to_string q_rec);
        go (snd (M.step m a)) rest)
  in
  match M.outcome (go (M.start ?config scenario) transcript) with
  | `Done r -> r
  | `Ask q ->
    fail_with "machine still asking %S after the full transcript"
      (M.question_to_string q)

let check_result ~what (reference : Learn.result) (r : Learn.result) =
  Alcotest.(check string)
    (what ^ ": interaction row")
    (Stats.to_row reference.Learn.stats)
    (Stats.to_row r.Learn.stats);
  Alcotest.(check string)
    (what ^ ": hypothesis query")
    reference.Learn.query_text r.Learn.query_text;
  Alcotest.(check int)
    (what ^ ": mq")
    reference.Learn.stats.Stats.mq r.Learn.stats.Stats.mq;
  Alcotest.(check int)
    (what ^ ": auto-answered mq")
    reference.Learn.stats.Stats.auto_known r.Learn.stats.Stats.auto_known

(* ---------- the scenario pool ------------------------------------------- *)

(* A suite's scenarios share one store; freeze its lazy indexes up front
   (same discipline as the bench drivers). *)
let prepare scenarios =
  List.iter
    (fun (_, sc) ->
      Store.prepare sc.Scenario.store;
      Store.set_strict sc.Scenario.store true)
    scenarios;
  scenarios

let fig16 =
  lazy
    (prepare
       (List.map (fun (n, sc) -> ("xmark-" ^ n, sc)) (Xl_workload.Xmark_scenarios.all ())
       @ List.map (fun (n, sc) -> ("xmp-" ^ n, sc)) (Xl_workload.Xmp_scenarios.all ())))

let fig16_scenario name = List.assoc name (Lazy.force fig16)

(* ---------- replay determinism ----------------------------------------- *)

let test_replay_fig16 () =
  List.iter
    (fun (name, sc) ->
      let reference, transcript = record (M.start sc) in
      let r = replay_transcript ~what:name sc transcript in
      check_result ~what:name reference r)
    (Lazy.force fig16)

(* The 25-seed fuzz corpus, recorded sequentially and replayed against a
   4-domain pool: the pool parallelizes work inside a step, so the
   question stream and the final row must not depend on it. *)
let test_replay_fuzz_corpus () =
  let pool = Pool.create ~domains:4 () in
  let pooled = { Learn.default_config with Learn.pool = Some pool } in
  List.iter
    (fun index ->
      let what = Printf.sprintf "fuzz case %d" index in
      let scenario = Case.scenario (Case.generate ~seed ~index) in
      let reference, transcript = record (M.start scenario) in
      let r_seq = replay_transcript ~what scenario transcript in
      check_result ~what:(what ^ " (-j 1)") reference r_seq;
      let r_par = replay_transcript ~config:pooled ~what scenario transcript in
      check_result ~what:(what ^ " (-j 4)") reference r_par)
    (List.init 25 Fun.id)

(* ---------- suspend/resume --------------------------------------------- *)

(* Drive with the machine's own teacher, snapshotting at every k-th Ask;
   then restore each snapshot into a fresh machine, finish it with the
   restored machine's own teacher, and compare against the
   uninterrupted run. *)
let check_suspend_resume ~what k scenario =
  let m0 = M.start scenario in
  let teacher = M.oracle_teacher m0 in
  let rec go snaps m =
    match M.outcome m with
    | `Done r -> (r, List.rev snaps)
    | `Ask q ->
      let snaps =
        if M.steps m mod k = 0 then (M.steps m, M.snapshot m) :: snaps
        else snaps
      in
      go snaps (snd (M.step m (M.answer_with teacher q)))
  in
  let reference, snaps = go [] m0 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: at least one snapshot at k=%d" what k)
    true (snaps <> []);
  List.iter
    (fun (n, snap) ->
      let what = Printf.sprintf "%s: k=%d, resumed at step %d" what k n in
      let m = M.restore ~scenario snap in
      Alcotest.(check int) (what ^ ": restored step") n (M.steps m);
      let r = M.drive ~teacher:(M.oracle_teacher m) m in
      check_result ~what reference r)
    snaps

let test_suspend_resume () =
  List.iter
    (fun k ->
      List.iter
        (fun name -> check_suspend_resume ~what:name k (fig16_scenario name))
        (* Q12 asks two Condition Boxes: snapshots at k=1 split the
           machine between them *)
        [ "xmp-Q1"; "xmark-Q3"; "xmark-Q12" ])
    [ 1; 3; 7 ];
  (* one deeper run: xmark Q7 asks 17 questions *)
  check_suspend_resume ~what:"xmark-Q7" 7 (fig16_scenario "xmark-Q7")

(* ---------- concurrent sessions on one worker service ------------------- *)

(* The session server's execution model, without the HTTP layer: N
   machines live at once on one [Pool.Service], each pinned to a worker
   by key, stepped in an interleaved round-robin until it reaches an
   Equivalence question, and snapshotted right there on its worker.
   Every snapshot is then restored against an INDEPENDENTLY REBUILT
   scenario (fresh stores — only the snapshot bytes and (uri, dewey)
   node identities cross, exactly what a fresh process would have) on a
   second service under a different key, and finished.  Rows, mq and
   auto_known must be byte-identical to the uninterrupted references. *)
let test_concurrent_snapshot_mid_eq () =
  let module Service = Pool.Service in
  let pick = [ "Q1"; "Q3"; "Q7"; "Q8"; "Q13" ] in
  let scenarios () =
    prepare
      (List.filter
         (fun (n, _) -> List.mem n pick)
         (Xl_workload.Xmark_scenarios.all ()))
  in
  let batch = scenarios () in
  let refs =
    List.map (fun (name, sc) -> (name, fst (record (M.start sc)))) batch
  in
  let svc = Service.start ~workers:2 () in
  let snaps = Hashtbl.create 8 in
  (* start every machine on its pinned worker; its teacher must be
     created there too (both hold domain-confined state) *)
  let sessions =
    List.mapi
      (fun i (name, sc) ->
        let m, teacher =
          Service.run svc ~key:i (fun () ->
              let m = M.start sc in
              (m, M.oracle_teacher m))
        in
        (i, name, ref m, teacher))
      batch
  in
  let rec interleave pending =
    match pending with
    | [] -> ()
    | _ ->
      interleave
        (List.filter
           (fun (i, name, mref, teacher) ->
             Service.run svc ~key:i (fun () ->
                 match M.outcome !mref with
                 | `Done _ ->
                   Alcotest.failf
                     "%s finished before any equivalence question" name
                 | `Ask (M.Equivalence _) ->
                   Hashtbl.replace snaps name (M.snapshot !mref, M.steps !mref);
                   M.abort !mref;
                   false
                 | `Ask q ->
                   mref := snd (M.step !mref (M.answer_with teacher q));
                   true))
           pending)
  in
  interleave sessions;
  Service.stop svc;
  Alcotest.(check int)
    "every session snapshotted mid-EQ" (List.length batch) (Hashtbl.length snaps);
  (* restore leg: fresh stores, fresh service, shuffled keys *)
  let svc2 = Service.start ~workers:2 () in
  let fresh = scenarios () in
  List.iteri
    (fun i (name, _) ->
      let snap, steps_at = Hashtbl.find snaps name in
      let scenario = List.assoc name fresh in
      let r =
        Service.run svc2 ~key:(i + 1) (fun () ->
            let m = M.restore ~scenario snap in
            (match M.outcome m with
            | `Ask (M.Equivalence _) -> ()
            | _ -> Alcotest.failf "%s did not restore at its equivalence" name);
            Alcotest.(check int) (name ^ ": restored step") steps_at (M.steps m);
            M.drive ~teacher:(M.oracle_teacher m) m)
      in
      check_result ~what:(name ^ " restored mid-EQ on the service")
        (List.assoc name refs) r)
    batch;
  Service.stop svc2

(* ---------- corruption -------------------------------------------------- *)

(* A snapshot with any single byte flipped must be rejected with
   Machine.Corrupt — restore must never produce a machine that would
   answer from corrupted state. *)
let test_corrupt_byte_flips () =
  let scenario = fig16_scenario "xmp-Q1" in
  let m0 = M.start scenario in
  let teacher = M.oracle_teacher m0 in
  let rec to_mid m =
    match M.outcome m with
    | `Done _ -> Alcotest.fail "xmp-Q1 finished before step 3"
    | `Ask _ when M.steps m = 3 -> m
    | `Ask q -> to_mid (snd (M.step m (M.answer_with teacher q)))
  in
  let snap = M.snapshot (to_mid m0) in
  for i = 0 to String.length snap - 1 do
    let corrupted = Bytes.of_string snap in
    Bytes.set corrupted i (Char.chr (Char.code snap.[i] lxor 0xff));
    match M.restore ~scenario (Bytes.to_string corrupted) with
    | _ -> Alcotest.failf "flip at byte %d of %d accepted" i (String.length snap)
    | exception M.Corrupt _ -> ()
  done;
  (* truncations, including an empty snapshot *)
  List.iter
    (fun len ->
      match M.restore ~scenario (String.sub snap 0 len) with
      | _ -> Alcotest.failf "truncation to %d bytes accepted" len
      | exception M.Corrupt _ -> ())
    [ 0; 4; String.length snap / 2; String.length snap - 1 ]

(* ---------- resuming mid-repair ----------------------------------------- *)

(* The spare-join fixture: greedy minimization discards a join the drop
   context cannot distinguish from redundant, so end-to-end verification
   fails and the repair sweep must restore it through further
   equivalence dialog.  Suspend at the first Ask inside the sweep and
   resume in a fresh machine: repair progress is machine state, so the
   resumed run finishes the same repair instead of restarting it. *)
let test_resume_mid_repair () =
  let f =
    List.find
      (fun (f : Xl_fuzz_fixtures.Fixtures.t) ->
        String.equal f.Xl_fuzz_fixtures.Fixtures.name "spare-join")
      Xl_fuzz_fixtures.Fixtures.all
  in
  let open Xl_fuzz_fixtures in
  let scenario_of () =
    let dtd = Xl_schema.Dtd_parser.parse ~root:f.Fixtures.root f.Fixtures.dtd in
    let doc =
      Xl_xml.Xml_parser.parse_doc ~uri:"fixture.xml" f.Fixtures.training
    in
    let store = Store.of_docs [ doc ] in
    Store.prepare store;
    Store.set_strict store true;
    Scenario.make ~description:f.Fixtures.bug ~source_dtd:dtd ~store
      ~target:f.Fixtures.target f.Fixtures.name
  in
  let scenario = scenario_of () in
  let m0 = M.start scenario in
  let teacher = M.oracle_teacher m0 in
  let rec to_repair m =
    match M.outcome m with
    | `Done _ ->
      Alcotest.fail "spare-join never suspended inside the repair sweep"
    | `Ask _ when (match M.phase m with M.Repairing _ -> true | _ -> false) ->
      m
    | `Ask q -> to_repair (snd (M.step m (M.answer_with teacher q)))
  in
  let m_repair = to_repair m0 in
  let snap = M.snapshot m_repair in
  (* the uninterrupted run, for reference *)
  let reference, _ = record (M.start (scenario_of ())) in
  Alcotest.(check bool) "reference verified" true reference.Learn.verified;
  (* restore against a freshly built store: only (uri, dewey) node
     identities and the transcript cross the snapshot boundary *)
  let scenario' = scenario_of () in
  let m = M.restore ~scenario:scenario' snap in
  (match M.phase m with
  | M.Repairing _ -> ()
  | _ -> Alcotest.fail "restored machine is not mid-repair");
  let r = M.drive ~teacher:(M.oracle_teacher m) m in
  Alcotest.(check bool) "resumed run verified" true r.Learn.verified;
  check_result ~what:"spare-join resumed mid-repair" reference r

(* ---------- stale forks ------------------------------------------------- *)

(* Machine values are persistent: after a newer step consumed the live
   continuation, stepping the old value rebuilds the engine by replay
   and the fork finishes identically. *)
let test_stale_fork () =
  let scenario = fig16_scenario "xmp-Q1" in
  let reference, transcript = record (M.start scenario) in
  let m0 = M.start scenario in
  let _, m1 = M.step m0 (snd (List.nth transcript 0)) in
  (* consume m1's continuation on one lineage... *)
  let _, _m2 = M.step m1 (snd (List.nth transcript 1)) in
  (* ...then fork: step the stale m1 again with the same answer *)
  let _, m1' = M.step m1 (snd (List.nth transcript 1)) in
  let r = M.drive ~teacher:(M.oracle_teacher m1') m1' in
  check_result ~what:"stale fork" reference r

(* ---------- answer-shape validation ------------------------------------- *)

let test_shape_validation () =
  let scenario = fig16_scenario "xmp-Q1" in
  let m0 = M.start scenario in
  (match M.outcome m0 with
  | `Done _ -> Alcotest.fail "xmp-Q1 needs no questions?"
  | `Ask q ->
    let bad : M.answer =
      match q with M.Order_box _ -> M.Bool true | _ -> M.Order []
    in
    (match M.step m0 bad with
    | _ -> Alcotest.fail "mis-shaped answer accepted"
    | exception Invalid_argument _ -> ()));
  (* the rejected answer did not corrupt the machine *)
  let r = M.drive ~teacher:(M.oracle_teacher m0) m0 in
  Alcotest.(check bool) "machine usable after rejection" true r.Learn.verified

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "machine"
    [
      ( "replay",
        [
          Alcotest.test_case "fig16 transcripts re-drive byte-identically"
            `Slow test_replay_fig16;
          Alcotest.test_case "25-seed fuzz corpus, -j 1 and -j 4" `Slow
            test_replay_fuzz_corpus;
        ] );
      ( "suspend-resume",
        [
          Alcotest.test_case "snapshot at every k-th Ask, k in {1,3,7}" `Slow
            test_suspend_resume;
          Alcotest.test_case
            "N interleaved sessions snapshotted mid-EQ on one service" `Slow
            test_concurrent_snapshot_mid_eq;
          Alcotest.test_case "single-byte flips and truncations raise Corrupt"
            `Quick test_corrupt_byte_flips;
          Alcotest.test_case "resuming mid-repair finishes the same sweep"
            `Quick test_resume_mid_repair;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "stale fork rebuilds by replay" `Quick
            test_stale_fork;
          Alcotest.test_case "mis-shaped answers rejected without corruption"
            `Quick test_shape_validation;
        ] );
    ]
