(* The domain-pool executor (Xl_exec.Pool) and the domain-safety
   guarantees it relies on:

   - scheduling unit tests: order preservation, empty/single inputs, more
     workers than items, exception re-raise with no leaked domains,
     nested-map degradation to sequential;
   - node-id allocation: documents built concurrently on several domains
     draw disjoint ids (Doc.next_node_id is atomic) and each store's
     id index stays consistent;
   - determinism: the Figure-16 interaction counts are byte-identical
     whether the suite runs on 1 worker or 4 (XLEARNER_JOBS=1 vs =4). *)

module Pool = Xl_exec.Pool
module Xml = Xl_xml

(* ---------- scheduling ------------------------------------------------- *)

let test_map_order () =
  let pool = Pool.create ~domains:4 () in
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "map preserves input order" (List.map (fun i -> i * i) xs)
    (Pool.map pool (fun i -> i * i) xs);
  Alcotest.(check (list int))
    "chunked map preserves input order"
    (List.map (fun i -> i + 1) xs)
    (Pool.map ~chunk:7 pool (fun i -> i + 1) xs)

let test_empty_and_single () =
  let pool = Pool.create ~domains:4 () in
  Alcotest.(check (list int)) "empty input" [] (Pool.map pool (fun i -> i) []);
  Alcotest.(check (list string))
    "single item" [ "x1" ]
    (Pool.map pool (fun i -> "x" ^ string_of_int i) [ 1 ])

let test_more_workers_than_items () =
  let pool = Pool.create ~domains:16 () in
  Alcotest.(check (list int))
    "3 items on a 16-worker pool" [ 2; 4; 6 ]
    (Pool.map pool (fun i -> 2 * i) [ 1; 2; 3 ])

exception Boom of int

let test_exception_propagation () =
  let pool = Pool.create ~domains:4 () in
  let raised =
    match Pool.map pool (fun i -> if i = 13 then raise (Boom i) else i) (List.init 50 Fun.id) with
    | _ -> None
    | exception Boom i -> Some i
  in
  Alcotest.(check (option int)) "the task's exception is re-raised" (Some 13) raised;
  (* all domains were joined before the re-raise: the pool is still
     usable, nothing is leaked or stuck *)
  Alcotest.(check (list int))
    "pool survives a raising map" [ 1; 2; 3 ]
    (Pool.map pool Fun.id [ 1; 2; 3 ])

let test_nested_map () =
  let pool = Pool.create ~domains:4 () in
  (* a task that calls Pool.map again: must degrade to sequential in the
     worker rather than spawn a second layer of domains *)
  let table =
    Pool.map pool
      (fun i -> Pool.map pool (fun j -> (i * 10) + j) [ 0; 1; 2 ])
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list (list int)))
    "nested map computes the same table"
    [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ]
    table

let test_default_jobs_floor () =
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1);
  Alcotest.(check int) "explicit size is respected" 3
    (Pool.domains (Pool.create ~domains:3 ()))

(* ---------- concurrent node-id allocation ------------------------------ *)

let small_frag k =
  Xml.Frag.e "root"
    (List.init 20 (fun i ->
         Xml.Frag.e "item"
           ~attrs:[ ("id", Printf.sprintf "d%d-i%d" k i) ]
           [ Xml.Frag.elem "name" (Printf.sprintf "name %d.%d" k i) ]))

let test_concurrent_store_ids () =
  let pool = Pool.create ~domains:4 () in
  let stores =
    Pool.map pool
      (fun k ->
        let doc =
          Xml.Doc.of_frag ~uri:(Printf.sprintf "doc%d.xml" k) (small_frag k)
        in
        Xml.Store.of_docs [ doc ])
      (List.init 8 Fun.id)
  in
  (* ids must be unique across every concurrently built store *)
  let all_ids =
    List.concat_map
      (fun store ->
        List.concat_map
          (fun d ->
            d.Xml.Doc.doc_node.Xml.Node.id
            :: List.map (fun n -> n.Xml.Node.id) (Xml.Doc.all_nodes d))
          (Xml.Store.docs store))
      stores
  in
  let sorted = List.sort_uniq Int.compare all_ids in
  Alcotest.(check int)
    "no duplicate node ids across concurrently built stores"
    (List.length all_ids) (List.length sorted);
  (* and each store's id index resolves its own nodes, exactly *)
  List.iter
    (fun store ->
      List.iter
        (fun d ->
          List.iter
            (fun n ->
              match Xml.Store.find_node_by_id store n.Xml.Node.id with
              | Some m ->
                Alcotest.(check bool)
                  "find_node_by_id returns the node itself" true
                  (Xml.Node.equal m n)
              | None -> Alcotest.fail "find_node_by_id lost a node")
            (Xml.Doc.all_nodes d))
        (Xml.Store.docs store))
    stores

(* ---------- determinism of the Figure-16 suites ------------------------ *)

let stats_row (name : string) (r : Xl_core.Learn.result) : string =
  let s = r.Xl_core.Learn.stats in
  Printf.sprintf "%s dd=%d(%d) mq=%d eq=%d ce=%d cb=%d(%d) ob=%d r=(%d,%d,%d) verified=%b"
    name s.Xl_core.Stats.dd s.Xl_core.Stats.dd_terminals s.Xl_core.Stats.mq
    s.Xl_core.Stats.eq s.Xl_core.Stats.ce s.Xl_core.Stats.cb
    s.Xl_core.Stats.cb_terminals s.Xl_core.Stats.ob s.Xl_core.Stats.reduced_r1
    s.Xl_core.Stats.reduced_r2 s.Xl_core.Stats.reduced_both
    r.Xl_core.Learn.verified

let run_fig16 pool scenarios : string list =
  Pool.map pool
    (fun (suite, name, sc) ->
      let label = suite ^ "-" ^ name in
      match Xl_core.Learn.run sc with
      | r -> stats_row label r
      | exception e -> label ^ " FAILED " ^ Printexc.to_string e)
    scenarios

(* the check behind `XLEARNER_JOBS=1` vs `XLEARNER_JOBS=4`: the suite's
   interaction counts may not depend on the worker count *)
let test_fig16_determinism () =
  let scenarios =
    List.map (fun (n, sc) -> ("xmark", n, sc)) (Xl_workload.Xmark_scenarios.all ())
    @ List.map (fun (n, sc) -> ("xmp", n, sc)) (Xl_workload.Xmp_scenarios.all ())
  in
  List.iter
    (fun (_, _, sc) -> Xml.Store.prepare sc.Xl_core.Scenario.store)
    scenarios;
  let sequential = run_fig16 (Pool.create ~domains:1 ()) scenarios in
  let parallel = run_fig16 (Pool.create ~domains:4 ()) scenarios in
  Alcotest.(check int) "same row count" (List.length sequential)
    (List.length parallel);
  List.iter2
    (fun s p -> Alcotest.(check string) "jobs=1 vs jobs=4 row" s p)
    sequential parallel

(* telemetry must be observation-only: the same rows whether tracing is
   on or off, at any worker count (the check behind running the suites
   with and without XLEARNER_TRACE) *)
let test_fig16_tracing_identity () =
  let scenarios =
    List.map (fun (n, sc) -> ("xmp", n, sc)) (Xl_workload.Xmp_scenarios.all ())
    @ List.filter_map
        (fun (n, sc) ->
          if List.mem n [ "Q1"; "Q13" ] then Some ("xmark", n, sc) else None)
        (Xl_workload.Xmark_scenarios.all ())
  in
  List.iter
    (fun (_, _, sc) -> Xml.Store.prepare sc.Xl_core.Scenario.store)
    scenarios;
  let with_tracing enabled workers =
    Xl_obs.Obs.reset ();
    Xl_obs.Obs.set_enabled enabled;
    Fun.protect ~finally:(fun () ->
        Xl_obs.Obs.set_enabled false;
        Xl_obs.Obs.reset ())
      (fun () -> run_fig16 (Pool.create ~domains:workers ()) scenarios)
  in
  let baseline = with_tracing false 1 in
  List.iter
    (fun (enabled, workers, what) ->
      List.iter2
        (fun b r -> Alcotest.(check string) what b r)
        baseline
        (with_tracing enabled workers))
    [
      (true, 1, "tracing on, 1 worker");
      (false, 4, "tracing off, 4 workers");
      (true, 4, "tracing on, 4 workers");
    ]

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "empty and single inputs" `Quick
            test_empty_and_single;
          Alcotest.test_case "more workers than items" `Quick
            test_more_workers_than_items;
          Alcotest.test_case "exceptions re-raise, no leaks" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested map runs sequentially" `Quick
            test_nested_map;
          Alcotest.test_case "default jobs floor" `Quick test_default_jobs_floor;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "concurrent stores: unique node ids" `Quick
            test_concurrent_store_ids;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig16 counts, 1 vs 4 workers" `Slow
            test_fig16_determinism;
          Alcotest.test_case "fig16 counts, tracing on vs off" `Slow
            test_fig16_tracing_identity;
        ] );
    ]
