(* The telemetry layer (Xl_obs.Obs) and its integrations:

   - span nesting: depth tracking, per-name aggregation, exception safety;
   - per-domain buffers: spans recorded inside pool workers on several
     domains all survive the merge-at-join (Obs.flush_domain);
   - histogram bucket boundaries of the log-scale (power-of-two) scheme;
   - disabled mode: a span call must not allocate (single flag check);
   - JSONL export: well-formed single-line objects, ascending sequence
     numbers, escaping, and the Trace (teacher dialog) round-trip. *)

module Obs = Xl_obs.Obs
module Pool = Xl_exec.Pool

(* every test leaves telemetry the way it found it: disabled and empty *)
let with_obs ?(enabled = true) f =
  Obs.reset ();
  Obs.set_enabled enabled;
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ---------- spans ------------------------------------------------------- *)

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Obs.span ~name:"outer" (fun () ->
            let a = Obs.span ~name:"inner" (fun () -> 20) in
            let b = Obs.span ~name:"inner" ~detail:"2nd" (fun () -> 22) in
            a + b)
      in
      Alcotest.(check int) "span returns the thunk's value" 42 r;
      let spans = Obs.spans () in
      Alcotest.(check int) "three spans recorded" 3 (List.length spans);
      let outer = List.find (fun s -> s.Obs.sp_name = "outer") spans in
      let inners = List.filter (fun s -> s.Obs.sp_name = "inner") spans in
      Alcotest.(check int) "outer at depth 0" 0 outer.Obs.sp_depth;
      List.iter
        (fun s -> Alcotest.(check int) "inner at depth 1" 1 s.Obs.sp_depth)
        inners;
      Alcotest.(check (option string))
        "detail is attached" (Some "2nd")
        (List.find_map (fun s -> s.Obs.sp_detail) inners);
      (* totals group by name only *)
      let totals = Obs.span_totals () in
      let inner_t = List.find (fun t -> t.Obs.st_name = "inner") totals in
      Alcotest.(check int) "inner total counts both" 2 inner_t.Obs.st_count;
      Alcotest.(check bool)
        "outer duration covers the inners" true
        (outer.Obs.sp_dur_ns
        >= List.fold_left (fun acc s -> acc + s.Obs.sp_dur_ns) 0 inners))

let test_span_exception () =
  with_obs (fun () ->
      (try Obs.span ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
      Alcotest.(check int) "a raising span is still recorded" 1
        (List.length (Obs.spans ()));
      (* and the depth counter unwound: the next span is at depth 0 *)
      Obs.span ~name:"after" (fun () -> ());
      let after = List.find (fun s -> s.Obs.sp_name = "after") (Obs.spans ()) in
      Alcotest.(check int) "depth recovered after exception" 0 after.Obs.sp_depth)

let test_multi_domain_merge () =
  with_obs (fun () ->
      let pool = Pool.create ~domains:4 () in
      let out =
        Pool.map pool
          (fun i -> Obs.span ~name:"task" ~detail:(string_of_int i) (fun () -> i * i))
          (List.init 8 Fun.id)
      in
      Alcotest.(check (list int))
        "results unaffected by spans"
        (List.init 8 (fun i -> i * i))
        out;
      let tasks = List.filter (fun s -> s.Obs.sp_name = "task") (Obs.spans ()) in
      Alcotest.(check int)
        "all 8 worker spans survive the merge-at-join" 8 (List.length tasks);
      let details =
        List.sort compare (List.filter_map (fun s -> s.Obs.sp_detail) tasks)
      in
      Alcotest.(check (list string))
        "one span per task"
        (List.sort compare (List.init 8 string_of_int))
        details)

(* ---------- metrics ----------------------------------------------------- *)

let test_counter () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test_counter" in
      Obs.Counter.incr c;
      Obs.Counter.add c 41;
      Alcotest.(check int) "counter accumulates" 42 (Obs.Counter.value c);
      Obs.set_enabled false;
      Obs.Counter.incr c;
      Alcotest.(check int) "disabled counter drops updates" 42 (Obs.Counter.value c);
      Obs.set_enabled true;
      Alcotest.(check bool) "make is idempotent per name" true
        (Obs.Counter.value (Obs.Counter.make "test_counter") = 42))

let test_histogram_buckets () =
  (* bucket 0: v <= 0; bucket i (i >= 1): 2^(i-1) <= v < 2^i *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_of %d" v)
        b (Obs.Histogram.bucket_of v))
    [ (-5, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (1023, 10); (1024, 11) ];
  List.iter
    (fun (i, lo) ->
      Alcotest.(check int) (Printf.sprintf "bucket_lo %d" i) lo (Obs.Histogram.bucket_lo i))
    [ (0, 0); (1, 1); (2, 2); (3, 4); (4, 8); (11, 1024) ];
  (* every boundary value lands in the bucket whose lower bound it is *)
  for i = 1 to 30 do
    Alcotest.(check int) "lower bound is inclusive" i
      (Obs.Histogram.bucket_of (Obs.Histogram.bucket_lo i))
  done;
  with_obs (fun () ->
      let h = Obs.Histogram.make "test_hist" in
      List.iter (Obs.Histogram.observe h) [ 0; 1; 3; 4; 100 ];
      Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
      Alcotest.(check int) "sum" 108 (Obs.Histogram.sum h);
      let b = Obs.Histogram.buckets h in
      Alcotest.(check int) "bucket 0 holds the zero" 1 b.(0);
      Alcotest.(check int) "bucket 2 holds the 3" 1 b.(2);
      Alcotest.(check int) "bucket 7 holds the 100" 1 b.(7))

(* ---------- disabled mode ------------------------------------------------ *)

let test_disabled_no_alloc () =
  with_obs ~enabled:false (fun () ->
      let f = fun () -> 42 in
      (* warm up any one-time lazy state *)
      ignore (Obs.span ~name:"off" f);
      let w0 = Gc.minor_words () in
      for _ = 1 to 100_000 do
        ignore (Obs.span ~name:"off" f)
      done;
      let dw = Gc.minor_words () -. w0 in
      (* a float-returning Gc probe costs a couple of words itself; 100k
         spans must not add per-call allocations on top *)
      Alcotest.(check bool)
        (Printf.sprintf "100k disabled spans allocate ~nothing (%.0f words)" dw)
        true (dw < 512.);
      Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.spans ())))

(* ---------- JSONL export ------------------------------------------------- *)

let test_jsonl_roundtrip () =
  with_obs (fun () ->
      Obs.span ~name:"alpha" ~detail:"with \"quotes\" and \\ and \nnewline"
        (fun () -> ());
      Obs.span ~name:"beta" (fun () -> ());
      let c = Obs.Counter.make "rt_counter" in
      Obs.Counter.add c 7;
      let path = Filename.temp_file "xl_obs_test" ".jsonl" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      Obs.write_jsonl path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check bool) "at least spans + snapshot lines" true
        (List.length lines >= 3);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a JSON object" true
            (String.length l > 2
            && String.sub l 0 7 = "{\"seq\":"
            && l.[String.length l - 1] = '}');
          (* single-line: embedded newlines must have been escaped *)
          Alcotest.(check bool) "no raw control chars" true
            (String.for_all (fun ch -> Char.code ch >= 0x20) l))
        lines;
      let seq_of l = Scanf.sscanf l "{\"seq\":%d" Fun.id in
      let seqs = List.map seq_of lines in
      Alcotest.(check bool) "sequence numbers ascend" true
        (List.sort compare seqs = seqs);
      Alcotest.(check bool) "escaped detail survived" true
        (List.exists
           (fun l ->
             let re = {|with \"quotes\" and \\ and \nnewline|} in
             let rec find i =
               i + String.length re <= String.length l
               && (String.sub l i (String.length re) = re || find (i + 1))
             in
             find 0)
           lines))

let test_trace_jsonl () =
  with_obs (fun () ->
      let teacher =
        {
          Xl_core.Teacher.path_membership =
            (fun ~label:_ ~context:_ ~rel_path:_ ~witness:_ -> true);
          path_membership_batch = None;
          equivalence = (fun ~label:_ ~context:_ ~extent:_ -> Xl_core.Teacher.Equal);
          condition_box = (fun ~label:_ ~context:_ ~negative_example:_ -> None);
          order_box = (fun ~label:_ -> []);
        }
      in
      let tr = Xl_core.Trace.create () in
      let w = Xl_core.Trace.wrap tr teacher in
      ignore
        (Obs.span ~name:"ask" (fun () ->
             w.Xl_core.Teacher.path_membership ~label:"N1" ~context:[]
               ~rel_path:[ "a"; "b" ] ~witness:None));
      ignore (w.Xl_core.Teacher.equivalence ~label:"N1" ~context:[] ~extent:[]);
      let records = Xl_core.Trace.records tr in
      Alcotest.(check int) "two dialog records" 2 (List.length records);
      Alcotest.(check bool) "records carry ascending seqs" true
        (match records with
        | [ a; b ] -> a.Xl_core.Trace.seq < b.Xl_core.Trace.seq
        | _ -> false);
      let jsonl = Xl_core.Trace.to_jsonl tr in
      let lines = String.split_on_char '\n' jsonl in
      Alcotest.(check int) "one line per record" 2 (List.length lines);
      let has sub l =
        let rec find i =
          i + String.length sub <= String.length l
          && (String.sub l i (String.length sub) = sub || find (i + 1))
        in
        find 0
      in
      Alcotest.(check bool) "mq event encoded" true
        (has {|"kind":"mq"|} (List.nth lines 0)
        && has {|"detail":"a/b"|} (List.nth lines 0)
        && has {|"answer":true|} (List.nth lines 0));
      Alcotest.(check bool) "eq event encoded" true
        (has {|"kind":"eq"|} (List.nth lines 1)
        && has {|"outcome":"accepted"|} (List.nth lines 1));
      (* merged export: the dialog interleaves with the span by seq *)
      let path = Filename.temp_file "xl_obs_trace" ".jsonl" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      Obs.write_jsonl ~extra:(Xl_core.Trace.to_jsonl_events tr) path;
      let ic = open_in path in
      let all = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "merged trace holds spans and dialog" true
        (has {|"name":"ask"|} all && has {|"kind":"mq"|} all))

(* ---------- cache counters ----------------------------------------------- *)

(* The learning loop's memoization layers report through Obs counters:
   the extent cache (Oracle + Eval, shared names) and the R1 step memo
   (Schema_paths).  A fast-path learning run must show traffic on all of
   them — and a naive run must leave them at zero, proving the caches
   are really off, not just unreported.  Zero-valued counters are also
   filtered from the telemetry JSON. *)

let cache_counters =
  [ "extent_cache_hit"; "extent_cache_miss"; "r1_cache_hit"; "r1_cache_miss" ]

let counter_value name =
  match Obs.Counter.find name with
  | Some c -> Obs.Counter.value c
  | None -> 0

let has_sub sub l =
  let rec find i =
    i + String.length sub <= String.length l
    && (String.sub l i (String.length sub) = sub || find (i + 1))
  in
  find 0

let run_xmp_q2 ~fast_paths =
  let sc = List.assoc "Q2" (Xl_workload.Xmp_scenarios.all ()) in
  (* word-at-a-time: batched fills answer R1 through the compiled schema
     DFA, which bypasses the step memo by design — the memo serves the
     sequential query path, so that is the path this test must drive *)
  let config = { Xl_core.Learn.default_config with fast_paths; batch = false } in
  ignore (Xl_core.Learn.run ~config sc)

let test_cache_counters_enabled () =
  with_obs (fun () ->
      run_xmp_q2 ~fast_paths:true;
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "%s > 0 after a fast-path run" name)
            true
            (counter_value name > 0))
        cache_counters;
      let json = Obs.telemetry_json () in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "%s appears in the telemetry block" name)
            true
            (has_sub (Printf.sprintf "{\"name\":\"%s\"" name) json))
        cache_counters)

let test_cache_counters_disabled_paths () =
  with_obs (fun () ->
      run_xmp_q2 ~fast_paths:false;
      List.iter
        (fun name ->
          Alcotest.(check int)
            (Printf.sprintf "%s stays 0 on a naive run" name)
            0 (counter_value name))
        cache_counters;
      let json = Obs.telemetry_json () in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "zero %s filtered from telemetry" name)
            false
            (has_sub (Printf.sprintf "{\"name\":\"%s\"" name) json))
        cache_counters)

(* ---------- reset -------------------------------------------------------- *)

let test_reset () =
  with_obs (fun () ->
      Obs.span ~name:"s" (fun () -> ());
      let c = Obs.Counter.make "reset_counter" in
      Obs.Counter.add c 5;
      let h = Obs.Histogram.make "reset_hist" in
      Obs.Histogram.observe h 9;
      Obs.reset ();
      Alcotest.(check int) "spans dropped" 0 (List.length (Obs.spans ()));
      Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.value c);
      Alcotest.(check int) "histogram zeroed" 0 (Obs.Histogram.count h);
      Obs.Counter.incr c;
      Alcotest.(check int) "registration survives reset" 1 (Obs.Counter.value c))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and totals" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "merge across 4 domains" `Quick
            test_multi_domain_merge;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counter;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        ] );
      ( "disabled",
        [ Alcotest.test_case "zero allocation" `Quick test_disabled_no_alloc ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "teacher dialog (Trace)" `Quick test_trace_jsonl;
        ] );
      ( "caches",
        [
          Alcotest.test_case "extent + R1 counters on a fast-path run" `Quick
            test_cache_counters_enabled;
          Alcotest.test_case "counters stay zero on a naive run" `Quick
            test_cache_counters_disabled_paths;
        ] );
      ( "reset", [ Alcotest.test_case "reset semantics" `Quick test_reset ] );
    ]
