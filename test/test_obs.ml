(* The telemetry layer (Xl_obs.Obs) and its integrations:

   - span nesting: depth tracking, per-name aggregation, exception safety;
   - per-domain buffers: spans recorded inside pool workers on several
     domains all survive the merge-at-join (Obs.flush_domain), and the
     Domain.at_exit backstop flushes domains that never flush themselves;
   - histogram bucket boundaries and interpolated quantiles of the
     log-linear (16 sub-buckets per octave) scheme;
   - the monotonic clock stub behind Obs.now_ns;
   - disabled mode: a span call must not allocate (single flag check);
   - JSONL export: well-formed single-line objects, ascending sequence
     numbers, escaping, and the Trace (teacher dialog) round-trip;
   - the analysis layer: Perfetto export round-trip, the sampling
     profiler's folded stacks, and Trace_analysis on a written trace. *)

module Obs = Xl_obs.Obs
module Profiler = Xl_obs.Profiler
module Perfetto = Xl_obs.Perfetto
module Json = Xl_obs.Json
module Tan = Xl_obs.Trace_analysis
module Pool = Xl_exec.Pool

(* every test leaves telemetry the way it found it: disabled and empty *)
let with_obs ?(enabled = true) f =
  Obs.reset ();
  Obs.set_enabled enabled;
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ---------- spans ------------------------------------------------------- *)

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Obs.span ~name:"outer" (fun () ->
            let a = Obs.span ~name:"inner" (fun () -> 20) in
            let b = Obs.span ~name:"inner" ~detail:"2nd" (fun () -> 22) in
            a + b)
      in
      Alcotest.(check int) "span returns the thunk's value" 42 r;
      let spans = Obs.spans () in
      Alcotest.(check int) "three spans recorded" 3 (List.length spans);
      let outer = List.find (fun s -> s.Obs.sp_name = "outer") spans in
      let inners = List.filter (fun s -> s.Obs.sp_name = "inner") spans in
      Alcotest.(check int) "outer at depth 0" 0 outer.Obs.sp_depth;
      List.iter
        (fun s -> Alcotest.(check int) "inner at depth 1" 1 s.Obs.sp_depth)
        inners;
      Alcotest.(check (option string))
        "detail is attached" (Some "2nd")
        (List.find_map (fun s -> s.Obs.sp_detail) inners);
      (* totals group by name only *)
      let totals = Obs.span_totals () in
      let inner_t = List.find (fun t -> t.Obs.st_name = "inner") totals in
      Alcotest.(check int) "inner total counts both" 2 inner_t.Obs.st_count;
      Alcotest.(check bool)
        "outer duration covers the inners" true
        (outer.Obs.sp_dur_ns
        >= List.fold_left (fun acc s -> acc + s.Obs.sp_dur_ns) 0 inners))

let test_span_exception () =
  with_obs (fun () ->
      (try Obs.span ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
      Alcotest.(check int) "a raising span is still recorded" 1
        (List.length (Obs.spans ()));
      (* and the depth counter unwound: the next span is at depth 0 *)
      Obs.span ~name:"after" (fun () -> ());
      let after = List.find (fun s -> s.Obs.sp_name = "after") (Obs.spans ()) in
      Alcotest.(check int) "depth recovered after exception" 0 after.Obs.sp_depth)

let test_multi_domain_merge () =
  with_obs (fun () ->
      let pool = Pool.create ~domains:4 () in
      let out =
        Pool.map pool
          (fun i -> Obs.span ~name:"task" ~detail:(string_of_int i) (fun () -> i * i))
          (List.init 8 Fun.id)
      in
      Alcotest.(check (list int))
        "results unaffected by spans"
        (List.init 8 (fun i -> i * i))
        out;
      let tasks = List.filter (fun s -> s.Obs.sp_name = "task") (Obs.spans ()) in
      Alcotest.(check int)
        "all 8 worker spans survive the merge-at-join" 8 (List.length tasks);
      let details =
        List.sort compare (List.filter_map (fun s -> s.Obs.sp_detail) tasks)
      in
      Alcotest.(check (list string))
        "one span per task"
        (List.sort compare (List.init 8 string_of_int))
        details)

(* ---------- metrics ----------------------------------------------------- *)

let test_counter () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test_counter" in
      Obs.Counter.incr c;
      Obs.Counter.add c 41;
      Alcotest.(check int) "counter accumulates" 42 (Obs.Counter.value c);
      Obs.set_enabled false;
      Obs.Counter.incr c;
      Alcotest.(check int) "disabled counter drops updates" 42 (Obs.Counter.value c);
      Obs.set_enabled true;
      Alcotest.(check bool) "make is idempotent per name" true
        (Obs.Counter.value (Obs.Counter.make "test_counter") = 42))

let test_histogram_buckets () =
  (* log-linear: bucket 0 takes v <= 0, values 1..15 get exact buckets,
     then every power-of-two octave splits into 16 linear sub-buckets *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_of %d" v)
        b (Obs.Histogram.bucket_of v))
    [
      (-5, 0); (0, 0); (1, 1); (3, 3); (15, 15); (16, 16); (31, 31); (32, 32);
      (33, 32); (34, 33); (1023, 111); (1024, 112);
    ];
  List.iter
    (fun (i, lo) ->
      Alcotest.(check int) (Printf.sprintf "bucket_lo %d" i) lo (Obs.Histogram.bucket_lo i))
    [ (0, 0); (1, 1); (3, 3); (15, 15); (16, 16); (33, 34); (112, 1024) ];
  (* every boundary value lands in the bucket whose lower bound it is *)
  for i = 1 to 200 do
    Alcotest.(check int) "lower bound is inclusive" i
      (Obs.Histogram.bucket_of (Obs.Histogram.bucket_lo i))
  done;
  (* relative bucket width stays within 6.25% from bucket 16 on *)
  for i = 16 to 200 do
    let lo = Obs.Histogram.bucket_lo i and hi = Obs.Histogram.bucket_lo (i + 1) in
    Alcotest.(check bool)
      (Printf.sprintf "bucket %d width %d within 6.25%% of %d" i (hi - lo) lo)
      true
      (float_of_int (hi - lo) <= 0.0625 *. float_of_int lo +. 1e-9)
  done;
  with_obs (fun () ->
      let h = Obs.Histogram.make "test_hist" in
      List.iter (Obs.Histogram.observe h) [ 0; 1; 3; 4; 100 ];
      Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
      Alcotest.(check int) "sum" 108 (Obs.Histogram.sum h);
      let b = Obs.Histogram.buckets h in
      Alcotest.(check int) "bucket 0 holds the zero" 1 b.(0);
      Alcotest.(check int) "bucket 3 holds the 3" 1 b.(3);
      Alcotest.(check int) "the 100 lands in its own exact bucket" 1
        b.(Obs.Histogram.bucket_of 100);
      Alcotest.(check int) "bucket_lo of 100's bucket is 100" 100
        (Obs.Histogram.bucket_lo (Obs.Histogram.bucket_of 100)))

let test_histogram_quantiles () =
  with_obs (fun () ->
      let h = Obs.Histogram.make "test_hist_q" in
      Alcotest.(check int) "empty histogram answers 0" 0
        (Obs.Histogram.quantile h 0.5);
      (* values 1..15 are exact buckets: quantiles of a uniform 1..10
         distribution come back exact *)
      for v = 1 to 10 do
        Obs.Histogram.observe h v
      done;
      Alcotest.(check int) "p50 of 1..10" 5 (Obs.Histogram.quantile h 0.5);
      Alcotest.(check int) "p100 of 1..10" 10 (Obs.Histogram.quantile h 1.0);
      Alcotest.(check int) "p0 clamps to the first sample" 1
        (Obs.Histogram.quantile h 0.0);
      (* a single large value: interpolation stays within the bucket's
         6.25% relative width *)
      let h2 = Obs.Histogram.make "test_hist_q2" in
      Obs.Histogram.observe h2 10_000;
      let q = Obs.Histogram.quantile h2 0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "p50 of a point mass at 10000 within 6.25%% (%d)" q)
        true
        (abs (q - 10_000) <= 625);
      (* monotone in q on a skewed distribution *)
      let h3 = Obs.Histogram.make "test_hist_q3" in
      List.iter
        (fun (v, n) ->
          for _ = 1 to n do
            Obs.Histogram.observe h3 v
          done)
        [ (10, 90); (1_000, 9); (100_000, 1) ];
      let p50 = Obs.Histogram.quantile h3 0.50 in
      let p95 = Obs.Histogram.quantile h3 0.95 in
      let p99 = Obs.Histogram.quantile h3 0.99 in
      let p100 = Obs.Histogram.quantile h3 1.0 in
      Alcotest.(check int) "p50 hits the bulk" 10 p50;
      Alcotest.(check bool) "p50 <= p95 <= p99 <= p100" true
        (p50 <= p95 && p95 <= p99 && p99 <= p100);
      Alcotest.(check bool)
        (Printf.sprintf "p95 lands in the 1000 spike (%d)" p95)
        true
        (abs (p95 - 1_000) <= 63);
      Alcotest.(check bool)
        (Printf.sprintf "p100 lands at the tail (%d)" p100)
        true
        (abs (p100 - 100_000) <= 6_250))

let test_quantile_of () =
  Alcotest.(check int) "empty list" 0 (Obs.quantile_of [] 0.5);
  Alcotest.(check int) "singleton" 7 (Obs.quantile_of [ 7 ] 0.99);
  (* exact order statistics with linear interpolation, q*(n-1) *)
  let xs = [ 40; 10; 30; 20 ] in
  Alcotest.(check int) "p0" 10 (Obs.quantile_of xs 0.0);
  Alcotest.(check int) "p50 interpolates" 25 (Obs.quantile_of xs 0.5);
  Alcotest.(check int) "p100" 40 (Obs.quantile_of xs 1.0);
  Alcotest.(check int) "q clamped above" 40 (Obs.quantile_of xs 2.0);
  let xs5 = [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "p50 odd count is the median" 3 (Obs.quantile_of xs5 0.5)

let test_span_total_quantiles () =
  with_obs (fun () ->
      for _ = 1 to 20 do
        Obs.span ~name:"q" (fun () -> ignore (Sys.opaque_identity (ref 0)))
      done;
      let t = List.find (fun t -> t.Obs.st_name = "q") (Obs.span_totals ()) in
      Alcotest.(check int) "count" 20 t.Obs.st_count;
      Alcotest.(check bool) "p50 <= p95 <= p99 <= max" true
        (t.Obs.st_p50_ns <= t.Obs.st_p95_ns
        && t.Obs.st_p95_ns <= t.Obs.st_p99_ns
        && t.Obs.st_p99_ns <= t.Obs.st_max_ns);
      Alcotest.(check bool) "quantiles within total" true
        (t.Obs.st_p99_ns <= t.Obs.st_total_ns))

(* ---------- disabled mode ------------------------------------------------ *)

let test_disabled_no_alloc () =
  with_obs ~enabled:false (fun () ->
      let f = fun () -> 42 in
      (* warm up any one-time lazy state *)
      ignore (Obs.span ~name:"off" f);
      let w0 = Gc.minor_words () in
      for _ = 1 to 100_000 do
        ignore (Obs.span ~name:"off" f)
      done;
      let dw = Gc.minor_words () -. w0 in
      (* a float-returning Gc probe costs a couple of words itself; 100k
         spans must not add per-call allocations on top *)
      Alcotest.(check bool)
        (Printf.sprintf "100k disabled spans allocate ~nothing (%.0f words)" dw)
        true (dw < 512.);
      Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.spans ())))

(* ---------- JSONL export ------------------------------------------------- *)

let test_jsonl_roundtrip () =
  with_obs (fun () ->
      Obs.span ~name:"alpha" ~detail:"with \"quotes\" and \\ and \nnewline"
        (fun () -> ());
      Obs.span ~name:"beta" (fun () -> ());
      let c = Obs.Counter.make "rt_counter" in
      Obs.Counter.add c 7;
      let path = Filename.temp_file "xl_obs_test" ".jsonl" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      Obs.write_jsonl path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check bool) "at least spans + snapshot lines" true
        (List.length lines >= 3);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a JSON object" true
            (String.length l > 2
            && String.sub l 0 7 = "{\"seq\":"
            && l.[String.length l - 1] = '}');
          (* single-line: embedded newlines must have been escaped *)
          Alcotest.(check bool) "no raw control chars" true
            (String.for_all (fun ch -> Char.code ch >= 0x20) l))
        lines;
      let seq_of l = Scanf.sscanf l "{\"seq\":%d" Fun.id in
      let seqs = List.map seq_of lines in
      Alcotest.(check bool) "sequence numbers ascend" true
        (List.sort compare seqs = seqs);
      Alcotest.(check bool) "escaped detail survived" true
        (List.exists
           (fun l ->
             let re = {|with \"quotes\" and \\ and \nnewline|} in
             let rec find i =
               i + String.length re <= String.length l
               && (String.sub l i (String.length re) = re || find (i + 1))
             in
             find 0)
           lines))

let test_trace_jsonl () =
  with_obs (fun () ->
      let teacher =
        {
          Xl_core.Teacher.path_membership =
            (fun ~label:_ ~context:_ ~rel_path:_ ~witness:_ -> true);
          path_membership_batch = None;
          equivalence = (fun ~label:_ ~context:_ ~extent:_ -> Xl_core.Teacher.Equal);
          condition_box = (fun ~label:_ ~context:_ ~negative_example:_ -> None);
          order_box = (fun ~label:_ -> []);
        }
      in
      let tr = Xl_core.Trace.create () in
      let w = Xl_core.Trace.wrap tr teacher in
      ignore
        (Obs.span ~name:"ask" (fun () ->
             w.Xl_core.Teacher.path_membership ~label:"N1" ~context:[]
               ~rel_path:[ "a"; "b" ] ~witness:None));
      ignore (w.Xl_core.Teacher.equivalence ~label:"N1" ~context:[] ~extent:[]);
      let records = Xl_core.Trace.records tr in
      Alcotest.(check int) "two dialog records" 2 (List.length records);
      Alcotest.(check bool) "records carry ascending seqs" true
        (match records with
        | [ a; b ] -> a.Xl_core.Trace.seq < b.Xl_core.Trace.seq
        | _ -> false);
      let jsonl = Xl_core.Trace.to_jsonl tr in
      let lines = String.split_on_char '\n' jsonl in
      Alcotest.(check int) "one line per record" 2 (List.length lines);
      let has sub l =
        let rec find i =
          i + String.length sub <= String.length l
          && (String.sub l i (String.length sub) = sub || find (i + 1))
        in
        find 0
      in
      Alcotest.(check bool) "mq event encoded" true
        (has {|"kind":"mq"|} (List.nth lines 0)
        && has {|"detail":"a/b"|} (List.nth lines 0)
        && has {|"answer":true|} (List.nth lines 0));
      Alcotest.(check bool) "eq event encoded" true
        (has {|"kind":"eq"|} (List.nth lines 1)
        && has {|"outcome":"accepted"|} (List.nth lines 1));
      (* merged export: the dialog interleaves with the span by seq *)
      let path = Filename.temp_file "xl_obs_trace" ".jsonl" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      Obs.write_jsonl ~extra:(Xl_core.Trace.to_jsonl_events tr) path;
      let ic = open_in path in
      let all = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "merged trace holds spans and dialog" true
        (has {|"name":"ask"|} all && has {|"kind":"mq"|} all))

(* ---------- cache counters ----------------------------------------------- *)

(* The learning loop's memoization layers report through Obs counters:
   the extent cache (Oracle + Eval, shared names) and the R1 step memo
   (Schema_paths).  A fast-path learning run must show traffic on all of
   them — and a naive run must leave them at zero, proving the caches
   are really off, not just unreported.  Zero-valued counters are also
   filtered from the telemetry JSON. *)

let cache_counters =
  [ "extent_cache_hit"; "extent_cache_miss"; "r1_cache_hit"; "r1_cache_miss" ]

let counter_value name =
  match Obs.Counter.find name with
  | Some c -> Obs.Counter.value c
  | None -> 0

let has_sub sub l =
  let rec find i =
    i + String.length sub <= String.length l
    && (String.sub l i (String.length sub) = sub || find (i + 1))
  in
  find 0

let run_xmp_q2 ~fast_paths =
  let sc = List.assoc "Q2" (Xl_workload.Xmp_scenarios.all ()) in
  (* word-at-a-time: batched fills answer R1 through the compiled schema
     DFA, which bypasses the step memo by design — the memo serves the
     sequential query path, so that is the path this test must drive *)
  let config = { Xl_core.Learn.default_config with fast_paths; batch = false } in
  ignore (Xl_core.Learn.run ~config sc)

let test_cache_counters_enabled () =
  with_obs (fun () ->
      run_xmp_q2 ~fast_paths:true;
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "%s > 0 after a fast-path run" name)
            true
            (counter_value name > 0))
        cache_counters;
      let json = Obs.telemetry_json () in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "%s appears in the telemetry block" name)
            true
            (has_sub (Printf.sprintf "{\"name\":\"%s\"" name) json))
        cache_counters)

let test_cache_counters_disabled_paths () =
  with_obs (fun () ->
      run_xmp_q2 ~fast_paths:false;
      List.iter
        (fun name ->
          Alcotest.(check int)
            (Printf.sprintf "%s stays 0 on a naive run" name)
            0 (counter_value name))
        cache_counters;
      let json = Obs.telemetry_json () in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "zero %s filtered from telemetry" name)
            false
            (has_sub (Printf.sprintf "{\"name\":\"%s\"" name) json))
        cache_counters)

(* ---------- clock -------------------------------------------------------- *)

let test_monotonic_clock () =
  (* the C stub must be in effect on every platform CI runs on; the
     pure-OCaml fallback exists for platforms without CLOCK_MONOTONIC *)
  Alcotest.(check bool) "monotonic stub resolved" true Obs.monotonic;
  let prev = ref (Obs.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Obs.now_ns () in
    if t < !prev then Alcotest.failf "clock stepped backwards: %d -> %d" !prev t;
    prev := t
  done

(* ---------- at-exit flush ------------------------------------------------ *)

let test_at_exit_flush () =
  with_obs (fun () ->
      (* a raw domain that records spans but never calls flush_domain:
         the Domain.at_exit backstop must merge its buffer anyway *)
      let d =
        Domain.spawn (fun () -> Obs.span ~name:"orphan" (fun () -> Sys.opaque_identity 1))
      in
      ignore (Domain.join d);
      let id = (Domain.get_id d :> int) in
      Alcotest.(check bool) "orphan span survived the domain's death" true
        (List.exists (fun s -> s.Obs.sp_name = "orphan") (Obs.spans ()));
      Alcotest.(check bool) "dead domain's buffer is empty" true
        (Obs.domain_buffer_empty id))

(* ---------- Perfetto export ---------------------------------------------- *)

let perfetto_x_events text =
  match Json.parse text with
  | Error e -> Alcotest.failf "perfetto output is not JSON: %s" e
  | Ok j -> (
    match Option.bind (Json.member "traceEvents" j) Json.to_list_opt with
    | None -> Alcotest.fail "perfetto output lacks traceEvents"
    | Some events ->
      List.filter (fun ev -> Json.mem_str "ph" ev = Some "X") events)

let test_perfetto_export () =
  with_obs (fun () ->
      Obs.span ~name:"outer" (fun () ->
          Obs.span ~name:"inner" (fun () -> Sys.opaque_identity ()));
      let c = Obs.Counter.make "pf_counter" in
      Obs.Counter.add c 3;
      let text = Perfetto.to_string () in
      (match Perfetto.validate text with
      | Error e -> Alcotest.failf "perfetto validate: %s" e
      | Ok n -> Alcotest.(check int) "two complete events" 2 n);
      let xs = perfetto_x_events text in
      let depth_of name =
        match
          List.find_opt (fun ev -> Json.mem_str "name" ev = Some name) xs
        with
        | None -> Alcotest.failf "no X event %s" name
        | Some ev -> (
          match Option.bind (Json.member "args" ev) (Json.mem_int "depth") with
          | Some d -> d
          | None -> Alcotest.failf "%s lacks args.depth" name)
      in
      Alcotest.(check int) "outer nests at depth 0" 0 (depth_of "outer");
      Alcotest.(check int) "inner nests at depth 1" 1 (depth_of "inner");
      Alcotest.(check bool) "counter snapshot present" true
        (let rec find i =
           i + 10 <= String.length text
           && (String.sub text i 10 = "pf_counter" || find (i + 1))
         in
         find 0))

let test_perfetto_domains () =
  with_obs (fun () ->
      let pool = Pool.create ~domains:4 () in
      ignore
        (Pool.map pool
           (fun i -> Obs.span ~name:"ptask" (fun () -> i))
           (List.init 8 Fun.id));
      let text = Perfetto.to_string () in
      (match Perfetto.validate text with
      | Error e -> Alcotest.failf "perfetto validate: %s" e
      | Ok n ->
        Alcotest.(check bool) "at least the 8 task events" true (n >= 8));
      (* tid = recording domain for every complete event *)
      let span_domains =
        List.sort_uniq compare
          (List.map (fun s -> s.Obs.sp_domain) (Obs.spans ()))
      in
      let event_tids =
        List.sort_uniq compare
          (List.filter_map (Json.mem_int "tid") (perfetto_x_events text))
      in
      Alcotest.(check (list int))
        "X-event tids are exactly the recording domains" span_domains event_tids)

(* ---------- sampling profiler -------------------------------------------- *)

let busy_ms ms =
  let t0 = Obs.now_ns () in
  let spin = ref 0 in
  while Obs.now_ns () - t0 < ms * 1_000_000 do
    incr spin
  done;
  Sys.opaque_identity !spin

let test_profiler_folded () =
  with_obs (fun () ->
      Profiler.reset ();
      Profiler.start ~interval_us:200 ();
      Alcotest.(check bool) "sampler running" true (Profiler.running ());
      ignore
        (Obs.span ~name:"outer" (fun () ->
             Obs.span ~name:"inner" (fun () -> busy_ms 60)));
      Profiler.stop ();
      Alcotest.(check bool) "sampler stopped" false (Profiler.running ());
      (* ~60 ms of nested work at a 200 µs period: hundreds of ticks,
         nearly all on the outer;inner stack.  Keep the assertion loose —
         schedulers stall — but a working sampler cannot miss it. *)
      Alcotest.(check bool)
        (Printf.sprintf "samples collected (%d)" (Profiler.sample_count ()))
        true
        (Profiler.sample_count () >= 5);
      let nested =
        List.fold_left
          (fun acc (stack, n) ->
            if stack = [ "outer"; "inner" ] then acc + n else acc)
          0 (Profiler.samples ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "outer;inner dominates (%d hits)" nested)
        true (nested >= 5);
      let folded = Profiler.folded () in
      Alcotest.(check bool) "folded line rendered" true
        (let sub = Printf.sprintf "outer;inner %d" nested in
         let rec find i =
           i + String.length sub <= String.length folded
           && (String.sub folded i (String.length sub) = sub || find (i + 1))
         in
         find 0);
      Profiler.reset ();
      Alcotest.(check int) "reset drops samples" 0 (Profiler.sample_count ()))

let test_profiler_disabled () =
  Obs.reset ();
  Obs.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.reset ()) @@ fun () ->
  Profiler.reset ();
  Profiler.start ~interval_us:200 ();
  (* telemetry is off: start is a documented no-op *)
  Alcotest.(check bool) "profiler refuses to start when disabled" false
    (Profiler.running ());
  ignore (Obs.span ~name:"off" (fun () -> busy_ms 3));
  Profiler.stop ();
  Alcotest.(check int) "zero samples with telemetry disabled" 0
    (Profiler.sample_count ());
  Alcotest.(check int) "zero ticks" 0 (Profiler.ticks ())

(* ---------- trace analysis ----------------------------------------------- *)

let test_trace_analysis () =
  with_obs (fun () ->
      ignore (Obs.span ~name:"side" (fun () -> Sys.opaque_identity 0));
      ignore
        (Obs.span ~name:"outer" (fun () ->
             Obs.span ~name:"inner" (fun () -> busy_ms 2)));
      let path = Filename.temp_file "xl_obs_tan" ".jsonl" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      Obs.write_jsonl path;
      match Tan.load path with
      | Error e -> Alcotest.failf "trace failed to load: %s" e
      | Ok t ->
        Alcotest.(check int) "three spans" 3 (List.length t.Tan.spans);
        Alcotest.(check int) "two roots" 2 (List.length t.Tan.roots);
        let outer = List.find (fun s -> s.Tan.name = "outer") t.Tan.spans in
        let inner = List.find (fun s -> s.Tan.name = "inner") t.Tan.spans in
        Alcotest.(check int) "inner is outer's only child" 1
          (List.length outer.Tan.children);
        Alcotest.(check int) "outer's child time is inner's duration"
          inner.Tan.dur_ns outer.Tan.child_ns;
        Alcotest.(check int) "self = dur - children"
          (outer.Tan.dur_ns - inner.Tan.dur_ns)
          (Tan.self_ns outer);
        (* by_name: inner burns the busy loop, so it leads on self time *)
        (match Tan.by_name t with
        | top :: _ -> Alcotest.(check string) "inner leads self time" "inner" top.Tan.ns_name
        | [] -> Alcotest.fail "by_name is empty");
        (* critical path: outer ends last (it ran second), then inner *)
        let path_names = List.map (fun s -> s.Tan.name) (Tan.critical_path t) in
        Alcotest.(check (list string))
          "critical path walks the latest-ending chain" [ "outer"; "inner" ]
          path_names;
        let util = Tan.utilization t in
        Alcotest.(check int) "one domain" 1 (List.length util);
        let report = Tan.report t in
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              (Printf.sprintf "report mentions %S" needle)
              true
              (let rec find i =
                 i + String.length needle <= String.length report
                 && (String.sub report i (String.length needle) = needle
                    || find (i + 1))
               in
               find 0))
          [ "critical path"; "worker utilization"; "inner"; "span tree" ])

let test_trace_analysis_malformed () =
  (match Tan.of_string "{\"seq\":1,\"kind\":\"counter\",\"name\":\"x\",\"value\":1}\nnot json at all\n" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error names line 2 (%s)" e)
      true
      (let rec find i =
         i + 6 <= String.length e
         && (String.sub e i 6 = "line 2" || find (i + 1))
       in
       find 0));
  (match Tan.of_string "{\"seq\":1,\"kind\":\"span\",\"name\":\"x\"}" with
  | Ok _ -> Alcotest.fail "span line without fields accepted"
  | Error _ -> ());
  match Tan.of_string "" with
  | Ok t ->
    Alcotest.(check int) "empty trace loads as zero events" 0 t.Tan.events;
    Alcotest.(check int) "empty trace has zero wall" 0 (Tan.wall_ns t)
  | Error e -> Alcotest.failf "empty input rejected: %s" e

(* ---------- reset -------------------------------------------------------- *)

let test_reset () =
  with_obs (fun () ->
      Obs.span ~name:"s" (fun () -> ());
      let c = Obs.Counter.make "reset_counter" in
      Obs.Counter.add c 5;
      let h = Obs.Histogram.make "reset_hist" in
      Obs.Histogram.observe h 9;
      Obs.reset ();
      Alcotest.(check int) "spans dropped" 0 (List.length (Obs.spans ()));
      Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.value c);
      Alcotest.(check int) "histogram zeroed" 0 (Obs.Histogram.count h);
      Obs.Counter.incr c;
      Alcotest.(check int) "registration survives reset" 1 (Obs.Counter.value c))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and totals" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "merge across 4 domains" `Quick
            test_multi_domain_merge;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counter;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "exact quantiles (quantile_of)" `Quick
            test_quantile_of;
          Alcotest.test_case "span-total quantile ordering" `Quick
            test_span_total_quantiles;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic now_ns" `Quick test_monotonic_clock ] );
      ( "flush",
        [
          Alcotest.test_case "Domain.at_exit backstop" `Quick
            test_at_exit_flush;
        ] );
      ( "disabled",
        [ Alcotest.test_case "zero allocation" `Quick test_disabled_no_alloc ] );
      ( "perfetto",
        [
          Alcotest.test_case "export round-trip + nesting" `Quick
            test_perfetto_export;
          Alcotest.test_case "domain-to-tid mapping" `Quick
            test_perfetto_domains;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "folded stacks on nested work" `Quick
            test_profiler_folded;
          Alcotest.test_case "no-op when telemetry disabled" `Quick
            test_profiler_disabled;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "trace load + report" `Quick test_trace_analysis;
          Alcotest.test_case "malformed traces rejected" `Quick
            test_trace_analysis_malformed;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "teacher dialog (Trace)" `Quick test_trace_jsonl;
        ] );
      ( "caches",
        [
          Alcotest.test_case "extent + R1 counters on a fast-path run" `Quick
            test_cache_counters_enabled;
          Alcotest.test_case "counters stay zero on a naive run" `Quick
            test_cache_counters_disabled_paths;
        ] );
      ( "reset", [ Alcotest.test_case "reset semantics" `Quick test_reset ] );
    ]
