(* lib/server end-to-end over a real Unix socket: one in-process server
   instance shared by every case, exercised through Xl_server.Client
   (actual HTTP/1.1 + JSON on the wire):

   - health/scenarios: the catalog is served;
   - auto parity: sessions driven by [{"auto":n}] report the same
     interaction row, stats JSON and verified flag as a synchronous
     Learn.run on an independently built scenario;
   - explicit answers: a local mirror machine computes every answer
     with its own oracle teacher, the test encodes it into the wire
     shapes ({"bool"}, {"bools"}, {"eq"}, {"cb" with a structural
     "cond"}, {"order"}) and posts it — the server-side machine must
     ask the same question stream and finish with the same row;
   - condition codec: every explicit condition of every catalog
     scenario survives cond_json/cond_of_json structurally intact
     (the codec that replaced Marshal on the wire);
   - suspend/resume: a session survives the spool round trip and still
     verifies; uploaded-corpus sessions refuse to suspend (409);
   - uploads: a serialized copy of a catalog document uploaded as a
     fresh corpus learns its target and verifies;
   - fault injection: garbage request lines, oversized framing and
     malformed JSON bodies answer 400 with a structured
     {"error","offset"} object and never kill the accept loop —
     the next request on a fresh connection succeeds. *)

module Server = Xl_server.Server
module Client = Xl_server.Client
module Json = Xl_json.Json
module M = Xl_core.Machine
module Learn = Xl_core.Learn
module Stats = Xl_core.Stats
module Scenario = Xl_core.Scenario
module Teacher = Xl_core.Teacher
module Store = Xl_xml.Store

let socket =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xlearner-test-%d.sock" (Unix.getpid ()))

let spool = socket ^ ".spool"

(* one server for the whole binary; torn down by the last case (and by
   process exit — the at_exit below sweeps the socket and spool) *)
let server =
  lazy
    (let t = Server.create ~workers:2 ~spool ~socket () in
     let th = Thread.create Server.serve t in
     (t, th))

let () =
  at_exit (fun () ->
      (try Sys.remove socket with Sys_error _ -> ());
      (try
         Array.iter
           (fun f -> Sys.remove (Filename.concat spool f))
           (Sys.readdir spool)
       with Sys_error _ -> ());
      try Unix.rmdir spool with Unix.Unix_error _ -> ())

let connect () =
  ignore (Lazy.force server);
  Client.connect socket

(* request that must succeed; Alcotest-fails with the error body *)
let req c meth path ?body () =
  let status, j = Client.request c ~meth ~path ?body () in
  if status >= 400 then
    Alcotest.failf "%s %s -> %d: %s" meth path status (Json.to_string j);
  j

let get_str name j =
  match Json.mem_str name j with
  | Some s -> s
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string j)

let auto n = Json.Obj [ ("auto", Json.int n) ]

let drive c id first =
  let rec go j =
    match Json.member "done" j with
    | Some d -> d
    | None ->
      go (req c "POST" ("/sessions/" ^ id ^ "/answer") ~body:(auto 10_000) ())
  in
  go first

(* fresh local scenarios, independent of the server's catalog builds *)
let local_scenario name =
  let prefixed tag scenarios =
    List.map (fun (n, sc) -> (tag ^ "/" ^ n, sc)) scenarios
  in
  let all =
    prefixed "xmark" (Xl_workload.Xmark_scenarios.all ())
    @ prefixed "xmp" (Xl_workload.Xmp_scenarios.all ())
  in
  let sc = List.assoc name all in
  Store.prepare sc.Scenario.store;
  Store.set_strict sc.Scenario.store true;
  sc

(* ---------- health + catalog -------------------------------------------- *)

let test_health () =
  let c = connect () in
  let h = req c "GET" "/health" () in
  Alcotest.(check (option bool)) "ok" (Some true) (Json.mem_bool "ok" h);
  let scenarios = req c "GET" "/scenarios" () in
  let names =
    match Json.mem_list "scenarios" scenarios with
    | Some l -> List.filter_map Json.to_string_opt l
    | None -> []
  in
  Alcotest.(check bool) "catalog has xmark/Q1" true (List.mem "xmark/Q1" names);
  Alcotest.(check bool) "catalog has xmp/Q1" true (List.mem "xmp/Q1" names);
  Client.close c

(* ---------- auto-driven parity ------------------------------------------- *)

let test_auto_parity () =
  let c = connect () in
  List.iter
    (fun name ->
      let local = Learn.run (local_scenario name) in
      let j =
        req c "POST" "/sessions" ~body:(Json.Obj [ ("scenario", Json.Str name) ]) ()
      in
      let id = get_str "id" j in
      let d = drive c id j in
      Alcotest.(check string)
        (name ^ ": interaction row")
        (Stats.to_row local.Learn.stats)
        (get_str "row" d);
      let local_stats =
        match Json.parse (Stats.to_json local.Learn.stats) with
        | Ok j -> Json.to_string j
        | Error e -> Alcotest.failf "local stats unparseable: %s" e
      in
      let server_stats =
        match Json.member "stats" d with
        | Some s -> Json.to_string s
        | None -> "missing"
      in
      Alcotest.(check string) (name ^ ": stats JSON") local_stats server_stats;
      Alcotest.(check (option bool))
        (name ^ ": verified")
        (Some local.Learn.verified)
        (Json.mem_bool "verified" d);
      ignore (req c "DELETE" ("/sessions/" ^ id) ()))
    [ "xmp/Q1"; "xmark/Q3" ];
  Client.close c

(* ---------- explicit answers through the wire codec ---------------------- *)

let answer_json store (a : M.answer) : string * Json.t =
  match a with
  | M.Bool b -> ("bool", Json.Obj [ ("bool", Json.Bool b) ])
  | M.Bools bs ->
    ("bools", Json.Obj [ ("bools", Json.list (fun b -> Json.Bool b) bs) ])
  | M.Eq Teacher.Equal -> ("eq", Json.Obj [ ("eq", Json.Str "equal") ])
  | M.Eq (Teacher.Counter { node; positive }) ->
    let uri, dewey = M.node_ref store node in
    ( "eq",
      Json.Obj
        [
          ( "eq",
            Json.Obj
              [
                ( "node",
                  Json.Obj
                    [
                      ("uri", Json.str uri); ("dewey", Json.list Json.int dewey);
                    ] );
                ("positive", Json.Bool positive);
              ] );
        ] )
  | M.Cb None -> ("cb", Json.Obj [ ("cb", Json.Null) ])
  | M.Cb (Some { Teacher.cond; terminals; negative }) ->
    ( "cb",
      Json.Obj
        [
          ( "cb",
            Json.Obj
              [
                ("cond", Server.cond_json cond);
                ("terminals", Json.int terminals);
                ("negative", Json.Bool negative);
              ] );
        ] )
  | M.Order keys ->
    ( "order",
      Json.Obj
        [
          ( "order",
            Json.list
              (fun (sp, asc) ->
                Json.Obj
                  [
                    ("path", Json.str (Xl_xquery.Simple_path.to_string sp));
                    ("asc", Json.Bool asc);
                  ])
              keys );
        ] )

let question_kind (q : M.question) =
  match q with
  | M.Membership _ -> "membership"
  | M.Membership_batch _ -> "membership_batch"
  | M.Equivalence _ -> "equivalence"
  | M.Condition_box _ -> "condition_box"
  | M.Order_box _ -> "order_box"

(* Drive a server session with answers a local mirror machine computes:
   the mirror's oracle teacher answers each question, the answer goes
   over the wire, and the mirror steps with the same answer — so the
   two machines must ask the same question stream and land on the same
   row.  Returns the set of answer shapes that crossed the wire. *)
let mirror_session c name shapes =
  let sc = local_scenario name in
  let reference = Learn.run (local_scenario name) in
  let m0 = M.start sc in
  let teacher = M.oracle_teacher m0 in
  let j =
    req c "POST" "/sessions" ~body:(Json.Obj [ ("scenario", Json.Str name) ]) ()
  in
  let id = get_str "id" j in
  let rec go m j =
    match (M.outcome m, Json.member "done" j) with
    | `Done r, Some d ->
      Alcotest.(check string)
        (name ^ ": mirrored row")
        (Stats.to_row r.Learn.stats) (get_str "row" d);
      Alcotest.(check string)
        (name ^ ": row matches uninterrupted run")
        (Stats.to_row reference.Learn.stats)
        (get_str "row" d);
      Alcotest.(check (option bool))
        (name ^ ": verified")
        (Some true)
        (Json.mem_bool "verified" d)
    | `Done _, None ->
      Alcotest.failf "%s: mirror finished but the server still asks" name
    | `Ask _, Some _ ->
      Alcotest.failf "%s: server finished but the mirror still asks" name
    | `Ask q, None ->
      let server_kind =
        match Json.member "question" j with
        | Some qj -> Option.value ~default:"?" (Json.mem_str "kind" qj)
        | None -> "missing"
      in
      Alcotest.(check string)
        (Printf.sprintf "%s: question kind at step %d" name (M.steps m))
        (question_kind q) server_kind;
      let a = M.answer_with teacher q in
      let shape, body = answer_json sc.Scenario.store a in
      Hashtbl.replace shapes shape ();
      let j' = req c "POST" ("/sessions/" ^ id ^ "/answer") ~body () in
      go (snd (M.step m a)) j'
  in
  go m0 j;
  ignore (req c "DELETE" ("/sessions/" ^ id) ())

let test_explicit_answers () =
  let c = connect () in
  let shapes = Hashtbl.create 8 in
  (* xmark/Q12 asks condition and order boxes, xmark/Q7 a counterexample
     equivalence, xmp/Q1 plain membership *)
  List.iter
    (fun name -> mirror_session c name shapes)
    [ "xmp/Q1"; "xmark/Q7"; "xmark/Q12" ];
  List.iter
    (fun shape ->
      Alcotest.(check bool)
        (Printf.sprintf "answer shape %S crossed the wire" shape)
        true (Hashtbl.mem shapes shape))
    [ "eq"; "cb"; "order" ];
  Alcotest.(check bool) "a membership answer crossed the wire" true
    (Hashtbl.mem shapes "bool" || Hashtbl.mem shapes "bools");
  Client.close c

(* ---------- condition wire codec ------------------------------------------ *)

(* every explicit condition in the whole catalog, through the actual
   wire text: encode, serialize, reparse, decode, compare structurally *)
let test_cond_codec () =
  let scenarios =
    Xl_workload.Xmark_scenarios.all ()
    @ Xl_workload.Xmp_scenarios.all ()
    @ Xl_workload.Sgml_scenarios.all ()
  in
  let count = ref 0 in
  List.iter
    (fun (name, sc) ->
      let conds =
        Xl_xqtree.Xqtree.fold
          (fun acc n -> n.Xl_xqtree.Xqtree.conds @ acc)
          [] sc.Scenario.target
        @ List.map snd sc.Scenario.extra_explicit
      in
      List.iter
        (fun cond ->
          incr count;
          let text = Json.to_string (Server.cond_json cond) in
          let j =
            match Json.parse text with
            | Ok j -> j
            | Error e -> Alcotest.failf "%s: cond JSON reparse: %s" name e
          in
          match Server.cond_of_json j with
          | Error e -> Alcotest.failf "%s: cond decode: %s in %s" name e text
          | Ok cond' ->
            (* free-form [Expr] predicates travel as XQuery text, so the
               reparse is print-identical (what the learned query emits)
               but not necessarily the same AST; every shaped
               constructor must survive structurally *)
            let rec has_expr (c : Xl_xqtree.Cond.t) =
              match c with
              | Xl_xqtree.Cond.Expr _ -> true
              | Xl_xqtree.Cond.Neg c -> has_expr c
              | _ -> false
            in
            Alcotest.(check string)
              (Printf.sprintf "%s: %s prints identically" name text)
              (Xl_xqtree.Cond.to_string cond)
              (Xl_xqtree.Cond.to_string cond');
            if not (has_expr cond) then
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s round-trips structurally" name text)
                true
                (Xl_xqtree.Cond.equal cond cond'))
        conds)
    scenarios;
  Alcotest.(check bool) "catalog conditions were exercised" true (!count > 20);
  (* malformed conditions are a structured Error, never an exception *)
  let deep =
    let rec nest n j =
      if n = 0 then j else nest (n - 1) (Json.Obj [ ("neg", j) ])
    in
    nest 100 (Json.Obj [ ("expr", Json.Str "1 = 1") ])
  in
  List.iter
    (fun bad ->
      match Server.cond_of_json bad with
      | Ok _ -> Alcotest.failf "bad cond accepted: %s" (Json.to_string bad)
      | Error _ -> ())
    [
      Json.Null;
      Json.Obj [];
      Json.Obj [ ("cond_hex", Json.Str "deadbeef") ];
      Json.Obj [ ("expr", Json.Str "for $x in (") ];
      Json.Obj [ ("join", Json.Arr [] ) ];
      Json.Obj
        [
          ( "value",
            Json.Obj
              [
                ( "ep",
                  Json.Obj
                    [ ("var", Json.Str "v"); ("path", Json.Str "a[zz]") ] );
                ("op", Json.Str "==");
                ("const", Json.Null);
              ] );
        ];
      deep;
    ]

(* ---------- suspend / resume --------------------------------------------- *)

let test_suspend_resume () =
  let c = connect () in
  let name = "xmark/Q8" in
  let local = Learn.run (local_scenario name) in
  let j =
    req c "POST" "/sessions" ~body:(Json.Obj [ ("scenario", Json.Str name) ]) ()
  in
  let id = get_str "id" j in
  ignore (req c "POST" ("/sessions/" ^ id ^ "/answer") ~body:(auto 2) ());
  let s = req c "POST" ("/sessions/" ^ id ^ "/suspend") () in
  Alcotest.(check (option bool)) "suspended" (Some true)
    (Json.mem_bool "suspended" s);
  (* suspended sessions are gone from the live table *)
  let status, _ = Client.request c ~meth:"GET" ~path:("/sessions/" ^ id) () in
  Alcotest.(check int) "suspended session is 404" 404 status;
  let r =
    req c "POST" "/sessions/resume" ~body:(Json.Obj [ ("id", Json.Str id) ]) ()
  in
  Alcotest.(check (option string)) "resume keeps the id" (Some id)
    (Json.mem_str "id" r);
  let d = drive c id (req c "POST" ("/sessions/" ^ id ^ "/answer") ~body:(auto 1) ()) in
  Alcotest.(check string) "row after the spool round trip"
    (Stats.to_row local.Learn.stats)
    (get_str "row" d);
  Alcotest.(check (option bool)) "verified after resume" (Some true)
    (Json.mem_bool "verified" d);
  ignore (req c "DELETE" ("/sessions/" ^ id) ());
  Client.close c

(* ---------- uploaded corpus ----------------------------------------------- *)

let test_upload () =
  let c = connect () in
  let target = "xmp/Q1" in
  let sc = local_scenario target in
  let doc = List.hd (Store.docs sc.Scenario.store) in
  let xml = Xl_xml.Serialize.node_to_string (Xl_xml.Doc.root doc) in
  let j =
    req c "POST" "/sessions"
      ~body:
        (Json.Obj
           [
             ( "document",
               Json.Obj
                 [ ("uri", Json.str "uploaded.xml"); ("xml", Json.str xml) ] );
             ("target", Json.str target);
           ])
      ()
  in
  let id = get_str "id" j in
  let sref = get_str "scenario" j in
  Alcotest.(check bool) "upload ref is tagged" true
    (String.length sref > 7 && String.equal (String.sub sref 0 7) "upload:");
  (* no stable scenario reference — suspend must refuse *)
  let status, _ =
    Client.request c ~meth:"POST" ~path:("/sessions/" ^ id ^ "/suspend") ()
  in
  Alcotest.(check int) "uploads refuse to suspend" 409 status;
  let d = drive c id j in
  Alcotest.(check (option bool)) "uploaded corpus verifies" (Some true)
    (Json.mem_bool "verified" d);
  ignore (req c "DELETE" ("/sessions/" ^ id) ());
  Client.close c

(* ---------- fault injection ----------------------------------------------- *)

let status_of_raw raw =
  match String.split_on_char ' ' raw with
  | _ :: code :: _ -> int_of_string_opt code
  | _ -> None

let check_alive () =
  let c = connect () in
  let h = req c "GET" "/health" () in
  Alcotest.(check (option bool)) "server alive after fault" (Some true)
    (Json.mem_bool "ok" h);
  Client.close c

let test_fault_injection () =
  (* a garbage request line *)
  let c = connect () in
  let raw = Client.request_raw c "GARBAGE\r\n\r\n" in
  Alcotest.(check (option int)) "garbage line -> 400" (Some 400)
    (status_of_raw raw);
  Client.close c;
  check_alive ();
  (* an oversized request line (the 8 KiB framing limit) *)
  let c = connect () in
  let raw =
    Client.request_raw c ("GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\n\r\n")
  in
  Alcotest.(check (option int)) "oversized line -> 400" (Some 400)
    (status_of_raw raw);
  Client.close c;
  check_alive ();
  (* well-framed request, malformed JSON body: the 400 carries the
     parser's byte offset *)
  let c = connect () in
  let body = "{\"scenario\" " in
  let raw =
    Client.request_raw c
      (Printf.sprintf
         "POST /sessions HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
         (String.length body) body)
  in
  Alcotest.(check (option int)) "malformed JSON -> 400" (Some 400)
    (status_of_raw raw);
  (match String.index_opt raw '{' with
  | None -> Alcotest.fail "400 body is not JSON"
  | Some i -> (
    match Json.parse (String.sub raw i (String.length raw - i)) with
    | Error e -> Alcotest.failf "400 body is not JSON: %s" e
    | Ok j ->
      Alcotest.(check bool) "error body has a message" true
        (Json.mem_str "error" j <> None);
      Alcotest.(check bool) "error body has an offset" true
        (Json.mem_int "offset" j <> None)));
  Client.close c;
  check_alive ();
  (* structured client mistakes on healthy connections *)
  let c = connect () in
  let status, _ =
    Client.request c ~meth:"POST" ~path:"/sessions"
      ~body:(Json.Obj [ ("scenario", Json.Str "no/such") ])
      ()
  in
  Alcotest.(check int) "unknown scenario -> 400" 400 status;
  let status, _ =
    Client.request c ~meth:"POST" ~path:"/sessions/nope/answer"
      ~body:(Json.Obj [ ("bool", Json.Bool true) ])
      ()
  in
  Alcotest.(check int) "unknown session -> 404" 404 status;
  let j =
    req c "POST" "/sessions" ~body:(Json.Obj [ ("scenario", Json.Str "xmp/Q1") ]) ()
  in
  let id = get_str "id" j in
  let status, _ =
    Client.request c ~meth:"POST" ~path:("/sessions/" ^ id ^ "/answer")
      ~body:(Json.Obj [ ("bool", Json.Num 42.) ])
      ()
  in
  Alcotest.(check int) "mis-shaped answer -> 400" 400 status;
  (* the rejected answer left the session usable *)
  let d = drive c id (req c "POST" ("/sessions/" ^ id ^ "/answer") ~body:(auto 1) ()) in
  Alcotest.(check (option bool)) "session survives a rejected answer"
    (Some true)
    (Json.mem_bool "verified" d);
  ignore (req c "DELETE" ("/sessions/" ^ id) ());
  Client.close c

(* ---------- teardown ------------------------------------------------------ *)

let test_shutdown () =
  let t, th = Lazy.force server in
  let c = Client.connect socket in
  let j = req c "POST" "/shutdown" () in
  Alcotest.(check (option bool)) "stopping" (Some true)
    (Json.mem_bool "stopping" j);
  Client.close c;
  Thread.join th;
  ignore t;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

(* ------------------------------------------------------------------------- *)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "health and catalog" `Quick test_health;
          Alcotest.test_case "auto-driven sessions match Learn.run" `Slow
            test_auto_parity;
          Alcotest.test_case "explicit answers via the JSON codec" `Slow
            test_explicit_answers;
          Alcotest.test_case "condition codec round-trips the catalog" `Quick
            test_cond_codec;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "suspend/resume through the spool" `Quick
            test_suspend_resume;
          Alcotest.test_case "uploaded corpus learns its target" `Quick
            test_upload;
        ] );
      ( "faults",
        [
          Alcotest.test_case "malformed requests answer 400, server survives"
            `Quick test_fault_injection;
        ] );
      ( "teardown",
        [ Alcotest.test_case "shutdown exits the accept loop" `Quick test_shutdown ] );
    ]
