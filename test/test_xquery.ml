(* Unit and property tests for the XQuery engine (xl_xquery). *)

open Xl_xquery

let check = Alcotest.check
let cbool = Alcotest.bool
let _cint = Alcotest.int
let cstr = Alcotest.string

let xml =
  {|<site>
      <regions>
        <africa><item id="i3"><name>Drum</name><price>80</price></item></africa>
        <europe>
          <item id="i7"><name>Potter</name><price>50</price></item>
          <item id="i6"><name>Encyclopedia</name><price>700</price></item>
        </europe>
      </regions>
      <people>
        <person id="p1"><name>Ann</name><age>31</age></person>
        <person id="p2"><name>Bo</name><age>25</age></person>
      </people>
      <sales>
        <sale item="i7" buyer="p1"/>
        <sale item="i3" buyer="p2"/>
      </sales>
    </site>|}

let doc () = Xl_xml.Xml_parser.parse_doc ~uri:"test.xml" xml
let ctx () = Eval.ctx_of_doc (doc ())

let run q = Eval.run_to_string (ctx ()) (Parser.parse q)

(* ---------- paths ----------------------------------------------------------- *)

let test_absolute_path () =
  check cstr "simple chain" "<name>Drum</name>" (run "/site/regions/africa/item/name")

let test_descendant_path () =
  check cstr "//name collects all"
    "<name>Drum</name><name>Potter</name><name>Encyclopedia</name><name>Ann</name><name>Bo</name>"
    (run "//name")

let test_alternation_path () =
  check cstr "alternation"
    "<name>Drum</name><name>Potter</name><name>Encyclopedia</name>"
    (run "/site/regions/(africa|europe)/item/name")

let test_wildcard_path () =
  check cstr "star step" "<name>Ann</name><name>Bo</name>" (run "/site/people/*/name")

let test_attribute_path () =
  check cstr "attributes atomize on output" "i3i7i6" (run "//item/@id")

let test_positional_path () =
  check cstr "first" "<item id=\"i7\"><name>Potter</name><price>50</price></item>"
    (run "/site/regions/europe/item[1]");
  check cstr "last" "<name>Encyclopedia</name>" (run "/site/regions/europe/item[last()]/name");
  check cstr "nth" "<name>Encyclopedia</name>" (run "/site/regions/europe/item[2]/name")

(* ---------- FLWOR ------------------------------------------------------------ *)

let test_flwor_where () =
  check cstr "filter on value" "<cheap><name>Potter</name></cheap>"
    (run "for $i in /site/regions/europe/item where data($i/price) < 300 return <cheap>{$i/name}</cheap>")

let test_flwor_join () =
  check cstr "value join"
    "<bought><name>Ann</name><name>Potter</name></bought><bought><name>Bo</name><name>Drum</name></bought>"
    (run
       "for $p in /site/people/person, $s in /site/sales/sale where $s/@buyer = $p/@id \
        return <bought>{$p/name}{for $i in //item where $i/@id = $s/@item return $i/name}</bought>")

let test_flwor_let () =
  check cstr "let binding" "130" (run "let $a := /site/regions/africa/item/price return data($a) + 50")

let test_order_by () =
  check cstr "ascending" "<name>Drum</name><name>Encyclopedia</name><name>Potter</name>"
    (run "for $n in //item/name order by data($n) return $n");
  check cstr "descending" "<name>Potter</name><name>Encyclopedia</name><name>Drum</name>"
    (run "for $n in //item/name order by data($n) descending return $n");
  check cstr "numeric key" "<name>Potter</name><name>Drum</name><name>Encyclopedia</name>"
    (run "for $i in //item order by data($i/price) return $i/name")

let test_quantifiers () =
  check cstr "some true" "true"
    (run "if (some $i in //item satisfies data($i/price) > 600) then \"true\" else \"false\"");
  check cstr "every false" "false"
    (run "if (every $i in //item satisfies data($i/price) > 600) then \"true\" else \"false\"")

(* ---------- comparisons and arithmetic ---------------------------------------- *)

let test_general_comparison () =
  (* existential semantics: some item price < 60 *)
  check cstr "existential" "yes" (run "if (//item/price < 60) then \"yes\" else \"no\"");
  check cstr "numeric vs string promotion" "yes"
    (run "if (/site/regions/africa/item/price = 80) then \"yes\" else \"no\"")

let test_is_comparison () =
  check cstr "is: identity" "yes"
    (run "if (/site/regions/europe/item[1] is /site/regions/europe/item[1]) then \"yes\" else \"no\"");
  check cstr "is: distinct nodes" "no"
    (run "if (/site/regions/europe/item[1] is /site/regions/europe/item[2]) then \"yes\" else \"no\"");
  check cstr "is: equal values are not identical" "no"
    (run "if (<a>x</a> is <a>x</a>) then \"yes\" else \"no\"")

let test_arithmetic () =
  check cstr "mul" "160" (run "data(/site/regions/africa/item/price) * 2");
  check cstr "precedence" "7" (run "1 + 2 * 3");
  check cstr "div" "40" (run "80 div 2");
  check cstr "mod" "2" (run "80 mod 3")

(* ---------- functions ----------------------------------------------------------- *)

let test_functions () =
  check cstr "count" "3" (run "count(//item)");
  check cstr "sum" "830" (run "sum(//item/price)");
  check cstr "avg" "28" (run "avg(//person/age)");
  check cstr "min/max" "2556" (run "(min(//age), max(//age) + 25)");
  check cstr "empty" "true" (run "if (empty(//nothing)) then \"true\" else \"false\"");
  check cstr "exists" "true" (run "if (exists(//item)) then \"true\" else \"false\"");
  check cstr "contains" "yes" (run "if (contains(/site/regions/europe/item[2]/name, \"cyclo\")) then \"yes\" else \"no\"");
  check cstr "starts-with" "yes" (run "if (starts-with(/site/people/person[1]/name, \"An\")) then \"yes\" else \"no\"");
  check cstr "string-length" "4" (run "string-length(\"abcd\")");
  check cstr "concat" "ab80" (run "concat(\"a\", \"b\", /site/regions/africa/item/price)");
  check cstr "distinct" "8050" (run "distinct((80, 50, 80))");
  check cstr "name" "item" (run "name(/site/regions/africa/item)");
  check cstr "not" "true" (run "if (not(empty(//item))) then \"true\" else \"false\"")

let test_more_functions () =
  check cstr "substring" "bcd" (run "substring(\"abcdef\", 2, 3)");
  check cstr "substring to end" "cdef" (run "substring(\"abcdef\", 3)");
  check cstr "substring out of range" "" (run "substring(\"ab\", 9)");
  check cstr "upper-case" "DRUM" (run "upper-case(/site/regions/africa/item/name)");
  check cstr "lower-case" "potter" (run "lower-case(/site/regions/europe/item[1]/name)");
  check cstr "normalize-space" "a b c" (run "normalize-space(\" a\tb\n c \")");
  check cstr "string-join" "i3-i7-i6" (run "string-join(//item/@id, \"-\")");
  check cstr "ceiling/abs" "32" (run "(ceiling(2.1), abs(0 - 2))");
  check cstr "boolean" "true" (run "if (boolean(//item)) then \"true\" else \"false\"");
  check cstr "reverse" "i6i7i3" (run "reverse(//item/@id)")

let test_union_operator () =
  check cstr "union merges in document order" "<name>Drum</name><name>Potter</name><name>Encyclopedia</name><name>Ann</name><name>Bo</name>"
    (run "//item/name union //person/name");
  check cstr "union dedups" "3" (run "count(//item union //item)");
  check cstr "union printer roundtrip" (run "//item/name union //person/name")
    (Eval.run_to_string (ctx ())
       (Parser.parse (Printer.to_string (Parser.parse "//item/name union //person/name"))))

let test_element_construction () =
  check cstr "attrs and nesting" "<r n=\"3\"><inner>80</inner></r>"
    (run "<r n=\"{count(//item)}\"><inner>{data(/site/regions/africa/item/price)}</inner></r>");
  check cstr "atoms joined with space" "<r>1 2 3</r>" (run "<r>{(1, 2, 3)}</r>")

(* regression: element construction with fresh tags must not invalidate
   compiled path DFAs on later evaluations — constructed symbols are
   interned at construction time, never mid-walk *)
let test_dfa_cache_stability () =
  let c = ctx () in
  let q =
    Parser.parse
      "<fresh-wrapper>{for $p in /site/people/person return <fresh-entry>{$p/name}</fresh-entry>}</fresh-wrapper>"
  in
  ignore (Eval.run c q);
  let p =
    Path_expr.seq
      [
        Path_expr.child (Path_expr.Tag "site");
        Path_expr.child (Path_expr.Tag "people");
        Path_expr.child (Path_expr.Tag "person");
      ]
  in
  let c1 = Eval.compile_path c p in
  let size1 = Xl_automata.Alphabet.size c.Eval.alphabet in
  ignore (Eval.run c q);
  ignore (Eval.run c q);
  check _cint "alphabet stable across repeated construction" size1
    (Xl_automata.Alphabet.size c.Eval.alphabet);
  let c2 = Eval.compile_path c p in
  check cbool "compiled DFA stays physically cached" true (c1 == c2)

let test_document_function () =
  let d1 = Xl_xml.Xml_parser.parse_doc ~uri:"a.xml" "<a><x>1</x></a>" in
  let d2 = Xl_xml.Xml_parser.parse_doc ~uri:"b.xml" "<b><x>2</x></b>" in
  let store = Xl_xml.Store.of_docs [ d1; d2 ] in
  let c = Eval.make_ctx store in
  check cstr "default document" "<x>1</x>" (Eval.run_to_string c (Parser.parse "/a/x"));
  check cstr "named document" "<x>2</x>"
    (Eval.run_to_string c (Parser.parse "document(\"b.xml\")/b/x"))

(* ---------- parser details --------------------------------------------------------- *)

let test_parse_errors () =
  let fails s = match Parser.parse s with exception Parser.Parse_error _ -> true | _ -> false in
  check cbool "unbalanced" true (fails "for $x in");
  check cbool "trailing" true (fails "1 + 2 extra");
  check cbool "bad path" true (fails "/site/");
  check cbool "bare name" true (fails "name")

let test_parse_comments () =
  check cstr "xquery comments" "3" (run "(: a comment (: nested :) :) count(//item)")

let test_printer_roundtrip () =
  let queries =
    [
      "for $i in /site/regions/(africa|europe)/item where data($i/price) < 300 return <a>{$i/name}</a>";
      "some $x in //item satisfies data($x/price) > 600";
      "count(//item) + sum(//item/price) * 2";
      "for $p in //person order by data($p/age) descending return $p/name";
      "if (empty(//zzz)) then <yes/> else <no/>";
    ]
  in
  List.iter
    (fun q ->
      let ast = Parser.parse q in
      let printed = Printer.to_string ast in
      let reparsed = Parser.parse printed in
      let c = ctx () in
      check cstr ("roundtrip: " ^ q) (Eval.run_to_string c ast) (Eval.run_to_string c reparsed))
    queries

(* ---------- values ------------------------------------------------------------------ *)

let test_value_semantics () =
  check cbool "to_bool empty" false (Value.to_bool []);
  check cbool "to_bool zero" false (Value.to_bool (Value.of_float 0.));
  check cbool "to_bool string" true (Value.to_bool (Value.of_string "x"));
  check cbool "atom_equal numeric promotion" true
    (Value.atom_equal (Value.Str "80") (Value.Num 80.));
  check cbool "atom_compare string fallback" true
    (Value.atom_compare (Value.Str "abc") (Value.Str "abd") < 0);
  check cstr "atom_to_string integer" "42" (Value.atom_to_string (Value.Num 42.))

let test_free_vars () =
  let ast = Parser.parse "for $x in //item where $x/@id = $y return $x" in
  check cbool "bound excluded, free kept" true (Ast.free_vars ast = [ "y" ])

(* ---------- property: parse/print/parse fixpoint -------------------------------------- *)

let prop_eval_deterministic =
  QCheck2.Test.make ~name:"evaluation is deterministic" ~count:30
    (QCheck2.Gen.oneofl
       [
         "//name"; "count(//item)"; "for $i in //item return $i/@id";
         "sum(//item/price) div count(//item)";
       ])
    (fun q -> String.equal (run q) (run q))

let () =
  Alcotest.run "xl_xquery"
    [
      ( "paths",
        [
          Alcotest.test_case "absolute" `Quick test_absolute_path;
          Alcotest.test_case "descendant" `Quick test_descendant_path;
          Alcotest.test_case "alternation" `Quick test_alternation_path;
          Alcotest.test_case "wildcard" `Quick test_wildcard_path;
          Alcotest.test_case "attributes" `Quick test_attribute_path;
          Alcotest.test_case "positional" `Quick test_positional_path;
        ] );
      ( "flwor",
        [
          Alcotest.test_case "where" `Quick test_flwor_where;
          Alcotest.test_case "join" `Quick test_flwor_join;
          Alcotest.test_case "let" `Quick test_flwor_let;
          Alcotest.test_case "order by" `Quick test_order_by;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "general" `Quick test_general_comparison;
          Alcotest.test_case "is" `Quick test_is_comparison;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        ] );
      ( "functions",
        [
          Alcotest.test_case "builtins" `Quick test_functions;
          Alcotest.test_case "string/number builtins" `Quick test_more_functions;
          Alcotest.test_case "union operator" `Quick test_union_operator;
          Alcotest.test_case "construction" `Quick test_element_construction;
          Alcotest.test_case "dfa cache stability" `Quick test_dfa_cache_stability;
          Alcotest.test_case "document()" `Quick test_document_function;
        ] );
      ( "parser",
        [
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "printer roundtrip" `Quick test_printer_roundtrip;
        ] );
      ( "values",
        [
          Alcotest.test_case "semantics" `Quick test_value_semantics;
          Alcotest.test_case "free variables" `Quick test_free_vars;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_eval_deterministic ]);
    ]
