(* Unit and property tests for the XML substrate (xl_xml). *)

open Xl_xml

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let cstr = Alcotest.string

(* ---------- Dewey ------------------------------------------------------- *)

let test_dewey_order () =
  check cint "root vs root" 0 (Dewey.compare [ 1 ] [ 1 ]);
  check cbool "prefix smaller" true (Dewey.compare [ 1 ] [ 1; 1 ] < 0);
  check cbool "sibling order" true (Dewey.compare [ 1; 2 ] [ 1; 10 ] < 0);
  check cbool "document order across depth" true (Dewey.compare [ 1; 2; 9 ] [ 1; 3 ] < 0)

let test_dewey_ancestor () =
  check cbool "ancestor" true (Dewey.is_ancestor [ 1 ] [ 1; 4; 2 ]);
  check cbool "self is not ancestor" false (Dewey.is_ancestor [ 1; 4 ] [ 1; 4 ]);
  check cbool "sibling not ancestor" false (Dewey.is_ancestor [ 1; 4 ] [ 1; 5; 1 ])

let test_dewey_strings () =
  check cstr "to_string" "1.2.3" (Dewey.to_string [ 1; 2; 3 ]);
  check cbool "roundtrip" true (Dewey.of_string "1.2.3" = [ 1; 2; 3 ]);
  check cbool "parent" true (Dewey.parent [ 1; 2; 3 ] = Some [ 1; 2 ]);
  check cbool "parent of root" true (Dewey.parent [ 1 ] = None)

(* ---------- Frag -------------------------------------------------------- *)

let sample =
  Frag.e "site"
    [
      Frag.e "regions"
        [
          Frag.e "europe"
            [
              Frag.e "item" ~attrs:[ ("id", "i7") ]
                [ Frag.elem "name" "H. Potter"; Frag.elem "description" "Best Seller" ];
            ];
        ];
      Frag.e "categories" [ Frag.e "category" ~attrs:[ ("id", "c2") ] [ Frag.elem "name" "book" ] ];
    ]

let test_frag_basics () =
  check cint "size counts elements" 9 (Frag.size sample);
  check cstr "string_value concatenates" "H. PotterBest Sellerbook" (Frag.string_value sample);
  check cbool "equal reflexive" true (Frag.equal sample sample);
  check cbool "equal distinguishes" false (Frag.equal sample (Frag.elem "site" "x"))

(* ---------- Doc / Node --------------------------------------------------- *)

let doc () = Doc.of_frag ~uri:"test.xml" sample

let test_doc_structure () =
  let d = doc () in
  let root = Doc.root d in
  check cstr "root tag" "site" root.Node.name;
  check cint "two children" 2 (List.length (Node.element_children root));
  check cbool "root has document parent" true
    (match Node.parent root with Some p -> p.Node.kind = Node.Document | None -> false)

let test_tag_path () =
  let d = doc () in
  match Doc.node_with_path d [ "site"; "regions"; "europe"; "item"; "name" ] with
  | None -> Alcotest.fail "name node not found"
  | Some n ->
    check cstr "string value" "H. Potter" (Node.string_value n);
    check cbool "tag_path roundtrip" true
      (Node.tag_path n = [ "site"; "regions"; "europe"; "item"; "name" ])

let test_attribute_path () =
  let d = doc () in
  match Doc.node_with_path d [ "site"; "regions"; "europe"; "item"; "@id" ] with
  | None -> Alcotest.fail "@id not found"
  | Some a ->
    check cbool "is attribute" true (Node.is_attribute a);
    check cstr "value" "i7" a.Node.value;
    check cstr "symbol" "@id" (Node.symbol a)

let test_document_order () =
  let d = doc () in
  let nodes = Doc.nodes d in
  let sorted = List.sort Node.compare_order nodes in
  let ids l = List.map (fun n -> n.Node.id) l in
  check cbool "Doc.nodes is already document order" true (ids nodes = ids sorted);
  let name_item = Doc.node_with_path d [ "site"; "regions"; "europe"; "item"; "name" ] in
  let name_cat = Doc.node_with_path d [ "site"; "categories"; "category"; "name" ] in
  match name_item, name_cat with
  | Some a, Some b -> check cbool "item name before category name" true (Node.compare_order a b < 0)
  | _ -> Alcotest.fail "nodes missing"

let test_find_by_id () =
  let d = doc () in
  let n = Option.get (Doc.node_with_path d [ "site"; "categories" ]) in
  check cbool "find_by_id" true
    (match Doc.find_by_id d n.Node.id with Some m -> Node.equal m n | None -> false)

let test_all_nodes_count () =
  let d = doc () in
  (* 9 elements + 2 attributes + 3 texts + 1 document node indexed *)
  check cint "node_count" 15 (Doc.node_count d);
  check cint "element+attr nodes" 11 (List.length (Doc.nodes d))

(* ---------- Parser ------------------------------------------------------- *)

let test_parse_simple () =
  let f = Xml_parser.parse "<a x='1'><b>hi</b><c/></a>" in
  check cbool "structure" true
    (Frag.equal f (Frag.e "a" ~attrs:[ ("x", "1") ] [ Frag.elem "b" "hi"; Frag.e "c" [] ]))

let test_parse_entities () =
  let f = Xml_parser.parse "<a>&lt;tag&gt; &amp; &quot;x&quot; &#65;&#x42;</a>" in
  check cstr "decoded" "<tag> & \"x\" AB" (Frag.string_value f)

let test_parse_cdata_comments () =
  let f = Xml_parser.parse "<a><!-- note --><![CDATA[1 < 2 & 3]]></a>" in
  check cstr "cdata" "1 < 2 & 3" (Frag.string_value f)

let test_parse_prolog_doctype () =
  let f =
    Xml_parser.parse
      "<?xml version=\"1.0\"?><!DOCTYPE site [<!ELEMENT site (a)*>]><site><a/></site>"
  in
  check cbool "root" true (match f with Frag.E ("site", _, _) -> true | _ -> false)

let test_parse_whitespace_dropped () =
  let f = Xml_parser.parse "<a>\n  <b>x</b>\n  <c>y</c>\n</a>" in
  match f with
  | Frag.E ("a", _, kids) -> check cint "two children, no ws text" 2 (List.length kids)
  | _ -> Alcotest.fail "bad parse"

let test_parse_errors () =
  let fails s =
    match Xml_parser.parse s with
    | exception Xml_parser.Parse_error _ -> true
    | _ -> false
  in
  check cbool "mismatched tags" true (fails "<a></b>");
  check cbool "unterminated" true (fails "<a><b>");
  check cbool "junk after root" true (fails "<a/><b/>");
  check cbool "bad entity" true (fails "<a>&nosuch;</a>")

(* ---------- Serializer ---------------------------------------------------- *)

let test_serialize_escaping () =
  let f = Frag.e "a" ~attrs:[ ("k", "a\"b<c") ] [ Frag.T "x<y&z>" ] in
  check cstr "escaped" "<a k=\"a&quot;b&lt;c\">x&lt;y&amp;z&gt;</a>"
    (Serialize.frag_to_string f)

let test_serialize_node_roundtrip () =
  let d = doc () in
  let s = Serialize.node_to_string (Doc.root d) in
  let f = Xml_parser.parse s in
  check cbool "frag equal after roundtrip" true (Frag.equal f sample)

(* ---------- Store ---------------------------------------------------------- *)

let test_store () =
  let d1 = Doc.of_frag ~uri:"a.xml" (Frag.elem "a" "1") in
  let d2 = Doc.of_frag ~uri:"b.xml" (Frag.elem "b" "2") in
  let st = Store.of_docs [ d1; d2 ] in
  check cstr "default is first" "a.xml" (Doc.uri (Store.default st));
  check cbool "find by uri" true (Store.find st "b.xml" <> None);
  check cbool "find by basename" true (Store.find st "/tmp/b.xml" <> None);
  check cbool "missing" true (Store.find st "c.xml" = None);
  check cint "all nodes" 2 (List.length (Store.nodes st))

(* ---------- Frozen ---------------------------------------------------------- *)

let test_frozen_document_order () =
  let d = doc () in
  let fz = Frozen.freeze d in
  (* Doc.all_nodes omits the document node, which freezing puts at 0 *)
  let expected = List.sort Node.compare_order (d.Doc.doc_node :: Doc.all_nodes d) in
  check cint "size is node count" (List.length expected) (Frozen.size fz);
  check cint "nodes array matches size" (Frozen.size fz) (Array.length fz.Frozen.nodes);
  List.iteri
    (fun p n ->
      check cbool
        (Printf.sprintf "position %d is document-order node %d" p n.Node.id)
        true
        (Node.equal fz.Frozen.nodes.(p) n))
    expected;
  check cbool "position 0 is the doc node" true
    (fz.Frozen.nodes.(0).Node.kind = Node.Document);
  (* per-position symbol ids decode to the node's symbol *)
  Array.iteri
    (fun p n ->
      check cstr
        (Printf.sprintf "symbol at %d" p)
        (Node.symbol n)
        fz.Frozen.symbols.(fz.Frozen.sym.(p)))
    fz.Frozen.nodes

let test_frozen_structure_consistency () =
  let d = doc () in
  let fz = Frozen.freeze d in
  let n = Frozen.size fz in
  check cint "doc node has no parent" (-1) fz.Frozen.parent.(0);
  check cint "doc subtree spans everything" n fz.Frozen.subtree_end.(0);
  for p = 0 to n - 1 do
    let e = fz.Frozen.subtree_end.(p) in
    check cbool (Printf.sprintf "subtree of %d is non-empty and in range" p) true
      (e > p && e <= n);
    (* every position strictly inside [p]'s subtree has its parent inside
       it too, and every position outside doesn't chain back to [p] *)
    for q = p + 1 to n - 1 do
      let inside = q < e in
      let par = fz.Frozen.parent.(q) in
      if inside then
        check cbool (Printf.sprintf "parent of %d stays in subtree of %d" q p) true
          (par >= p && par < e)
      else
        check cbool (Printf.sprintf "%d outside subtree of %d" q p) true (par < p || par >= e)
    done;
    (* sibling/child links agree with parent links *)
    let fc = fz.Frozen.first_child.(p) in
    if fc >= 0 then (
      check cint (Printf.sprintf "first child of %d" p) p fz.Frozen.parent.(fc);
      check cint "first child is the next position" (p + 1) fc);
    let ns = fz.Frozen.next_sibling.(p) in
    if ns >= 0 then (
      check cbool (Printf.sprintf "next sibling of %d shares parent" p) true
        (fz.Frozen.parent.(ns) = fz.Frozen.parent.(p));
      check cint (Printf.sprintf "sibling of %d starts after its subtree" p) e ns)
  done

let test_frozen_pos_of_node () =
  let d = doc () in
  let fz = Frozen.freeze d in
  Array.iteri
    (fun p n ->
      match Frozen.pos_of_node fz n with
      | Some p' -> check cint (Printf.sprintf "pos_of_node roundtrip %d" p) p p'
      | None -> Alcotest.failf "node at position %d not found" p)
    fz.Frozen.nodes;
  let other = Doc.of_frag ~uri:"other.xml" (Frag.elem "a" "x") in
  check cbool "foreign node has no position" true
    (Frozen.pos_of_node fz (Doc.root other) = None)

(* ---------- Properties ------------------------------------------------------ *)

let gen_frag =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "item"; "name" ] in
  let attr = pair (oneofl [ "id"; "x" ]) (string_size ~gen:(char_range 'a' 'z') (1 -- 6)) in
  let text = string_size ~gen:(char_range 'a' 'z') (1 -- 8) in
  fix
    (fun self depth ->
      if depth = 0 then map (fun s -> Frag.T s) text
      else
        frequency
          [
            (1, map (fun s -> Frag.T s) text);
            ( 3,
              map3
                (fun t attrs kids ->
                  (* attribute names must be unique per element, and
                     adjacent text children merge on reparse *)
                  let attrs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs in
                  let rec merge = function
                    | Frag.T a :: Frag.T b :: rest -> merge (Frag.T (a ^ b) :: rest)
                    | x :: rest -> x :: merge rest
                    | [] -> []
                  in
                  Frag.E (t, attrs, merge kids))
                tag (list_size (0 -- 2) attr)
                (list_size (0 -- 3) (self (depth - 1))) );
          ])
    2

let rec merge_texts = function
  | Frag.T a :: Frag.T b :: rest -> merge_texts (Frag.T (a ^ b) :: rest)
  | Frag.E (t, attrs, kids) :: rest -> Frag.E (t, attrs, merge_texts kids) :: merge_texts rest
  | x :: rest -> x :: merge_texts rest
  | [] -> []

let gen_doc_frag =
  QCheck2.Gen.map
    (fun kids -> Frag.E ("root", [], merge_texts kids))
    QCheck2.Gen.(list_size (0 -- 4) gen_frag)

let prop_roundtrip =
  QCheck2.Test.make ~name:"serialize/parse roundtrip" ~count:200
    ~print:Serialize.frag_to_string gen_doc_frag
    (fun f ->
      (* whitespace-only text nodes are dropped by the parser, so only
         generate non-ws text (the generator above does) *)
      let s = Serialize.frag_to_string f in
      Frag.equal (Xml_parser.parse s) f)

let prop_dewey_total_order =
  let open QCheck2 in
  Test.make ~name:"dewey compare is a total order" ~count:500
    Gen.(triple (list_size (1 -- 4) (1 -- 5)) (list_size (1 -- 4) (1 -- 5)) (list_size (1 -- 4) (1 -- 5)))
    (fun (a, b, c) ->
      let ( <= ) x y = Dewey.compare x y <= 0 in
      (* antisymmetry + transitivity spot checks *)
      (not (a <= b) || not (b <= a) || Dewey.compare a b = 0)
      && ((not (a <= b)) || (not (b <= c)) || a <= c))

let prop_tag_paths_unique_prefix =
  QCheck2.Test.make ~name:"node tag_path starts with the root tag" ~count:100
    gen_doc_frag (fun f ->
      let d = Doc.of_frag f in
      List.for_all
        (fun n ->
          match Node.tag_path n with "root" :: _ -> true | _ -> false)
        (Doc.nodes d))

let () =
  Alcotest.run "xl_xml"
    [
      ( "dewey",
        [
          Alcotest.test_case "order" `Quick test_dewey_order;
          Alcotest.test_case "ancestor" `Quick test_dewey_ancestor;
          Alcotest.test_case "strings" `Quick test_dewey_strings;
        ] );
      ("frag", [ Alcotest.test_case "basics" `Quick test_frag_basics ]);
      ( "doc",
        [
          Alcotest.test_case "structure" `Quick test_doc_structure;
          Alcotest.test_case "tag_path" `Quick test_tag_path;
          Alcotest.test_case "attribute path" `Quick test_attribute_path;
          Alcotest.test_case "document order" `Quick test_document_order;
          Alcotest.test_case "find_by_id" `Quick test_find_by_id;
          Alcotest.test_case "node counts" `Quick test_all_nodes_count;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata and comments" `Quick test_parse_cdata_comments;
          Alcotest.test_case "prolog and doctype" `Quick test_parse_prolog_doctype;
          Alcotest.test_case "whitespace dropped" `Quick test_parse_whitespace_dropped;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "serializer",
        [
          Alcotest.test_case "escaping" `Quick test_serialize_escaping;
          Alcotest.test_case "roundtrip" `Quick test_serialize_node_roundtrip;
        ] );
      ("store", [ Alcotest.test_case "basics" `Quick test_store ]);
      ( "frozen",
        [
          Alcotest.test_case "document order" `Quick test_frozen_document_order;
          Alcotest.test_case "structure consistency" `Quick test_frozen_structure_consistency;
          Alcotest.test_case "pos_of_node roundtrip" `Quick test_frozen_pos_of_node;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_dewey_total_order; prop_tag_paths_unique_prefix ] );
    ]
