(* Unit and property tests for the XML substrate (xl_xml). *)

open Xl_xml

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let cstr = Alcotest.string

(* ---------- Dewey ------------------------------------------------------- *)

let test_dewey_order () =
  check cint "root vs root" 0 (Dewey.compare [ 1 ] [ 1 ]);
  check cbool "prefix smaller" true (Dewey.compare [ 1 ] [ 1; 1 ] < 0);
  check cbool "sibling order" true (Dewey.compare [ 1; 2 ] [ 1; 10 ] < 0);
  check cbool "document order across depth" true (Dewey.compare [ 1; 2; 9 ] [ 1; 3 ] < 0)

let test_dewey_ancestor () =
  check cbool "ancestor" true (Dewey.is_ancestor [ 1 ] [ 1; 4; 2 ]);
  check cbool "self is not ancestor" false (Dewey.is_ancestor [ 1; 4 ] [ 1; 4 ]);
  check cbool "sibling not ancestor" false (Dewey.is_ancestor [ 1; 4 ] [ 1; 5; 1 ])

let test_dewey_strings () =
  check cstr "to_string" "1.2.3" (Dewey.to_string [ 1; 2; 3 ]);
  check cbool "roundtrip" true (Dewey.of_string "1.2.3" = [ 1; 2; 3 ]);
  check cbool "parent" true (Dewey.parent [ 1; 2; 3 ] = Some [ 1; 2 ]);
  check cbool "parent of root" true (Dewey.parent [ 1 ] = None)

(* ---------- Frag -------------------------------------------------------- *)

let sample =
  Frag.e "site"
    [
      Frag.e "regions"
        [
          Frag.e "europe"
            [
              Frag.e "item" ~attrs:[ ("id", "i7") ]
                [ Frag.elem "name" "H. Potter"; Frag.elem "description" "Best Seller" ];
            ];
        ];
      Frag.e "categories" [ Frag.e "category" ~attrs:[ ("id", "c2") ] [ Frag.elem "name" "book" ] ];
    ]

let test_frag_basics () =
  check cint "size counts elements" 9 (Frag.size sample);
  check cstr "string_value concatenates" "H. PotterBest Sellerbook" (Frag.string_value sample);
  check cbool "equal reflexive" true (Frag.equal sample sample);
  check cbool "equal distinguishes" false (Frag.equal sample (Frag.elem "site" "x"))

(* ---------- Doc / Node --------------------------------------------------- *)

let doc () = Doc.of_frag ~uri:"test.xml" sample

let test_doc_structure () =
  let d = doc () in
  let root = Doc.root d in
  check cstr "root tag" "site" root.Node.name;
  check cint "two children" 2 (List.length (Node.element_children root));
  check cbool "root has document parent" true
    (match Node.parent root with Some p -> p.Node.kind = Node.Document | None -> false)

let test_tag_path () =
  let d = doc () in
  match Doc.node_with_path d [ "site"; "regions"; "europe"; "item"; "name" ] with
  | None -> Alcotest.fail "name node not found"
  | Some n ->
    check cstr "string value" "H. Potter" (Node.string_value n);
    check cbool "tag_path roundtrip" true
      (Node.tag_path n = [ "site"; "regions"; "europe"; "item"; "name" ])

let test_attribute_path () =
  let d = doc () in
  match Doc.node_with_path d [ "site"; "regions"; "europe"; "item"; "@id" ] with
  | None -> Alcotest.fail "@id not found"
  | Some a ->
    check cbool "is attribute" true (Node.is_attribute a);
    check cstr "value" "i7" a.Node.value;
    check cstr "symbol" "@id" (Node.symbol a)

let test_document_order () =
  let d = doc () in
  let nodes = Doc.nodes d in
  let sorted = List.sort Node.compare_order nodes in
  let ids l = List.map (fun n -> n.Node.id) l in
  check cbool "Doc.nodes is already document order" true (ids nodes = ids sorted);
  let name_item = Doc.node_with_path d [ "site"; "regions"; "europe"; "item"; "name" ] in
  let name_cat = Doc.node_with_path d [ "site"; "categories"; "category"; "name" ] in
  match name_item, name_cat with
  | Some a, Some b -> check cbool "item name before category name" true (Node.compare_order a b < 0)
  | _ -> Alcotest.fail "nodes missing"

let test_find_by_id () =
  let d = doc () in
  let n = Option.get (Doc.node_with_path d [ "site"; "categories" ]) in
  check cbool "find_by_id" true
    (match Doc.find_by_id d n.Node.id with Some m -> Node.equal m n | None -> false)

let test_all_nodes_count () =
  let d = doc () in
  (* 9 elements + 2 attributes + 3 texts + 1 document node indexed *)
  check cint "node_count" 15 (Doc.node_count d);
  check cint "element+attr nodes" 11 (List.length (Doc.nodes d))

(* ---------- Parser ------------------------------------------------------- *)

let test_parse_simple () =
  let f = Xml_parser.parse "<a x='1'><b>hi</b><c/></a>" in
  check cbool "structure" true
    (Frag.equal f (Frag.e "a" ~attrs:[ ("x", "1") ] [ Frag.elem "b" "hi"; Frag.e "c" [] ]))

let test_parse_entities () =
  let f = Xml_parser.parse "<a>&lt;tag&gt; &amp; &quot;x&quot; &#65;&#x42;</a>" in
  check cstr "decoded" "<tag> & \"x\" AB" (Frag.string_value f)

let test_parse_cdata_comments () =
  let f = Xml_parser.parse "<a><!-- note --><![CDATA[1 < 2 & 3]]></a>" in
  check cstr "cdata" "1 < 2 & 3" (Frag.string_value f)

let test_parse_prolog_doctype () =
  let f =
    Xml_parser.parse
      "<?xml version=\"1.0\"?><!DOCTYPE site [<!ELEMENT site (a)*>]><site><a/></site>"
  in
  check cbool "root" true (match f with Frag.E ("site", _, _) -> true | _ -> false)

let test_parse_whitespace_dropped () =
  let f = Xml_parser.parse "<a>\n  <b>x</b>\n  <c>y</c>\n</a>" in
  match f with
  | Frag.E ("a", _, kids) -> check cint "two children, no ws text" 2 (List.length kids)
  | _ -> Alcotest.fail "bad parse"

let test_parse_errors () =
  let fails s =
    match Xml_parser.parse s with
    | exception Xml_parser.Parse_error _ -> true
    | _ -> false
  in
  check cbool "mismatched tags" true (fails "<a></b>");
  check cbool "unterminated" true (fails "<a><b>");
  check cbool "junk after root" true (fails "<a/><b/>");
  check cbool "bad entity" true (fails "<a>&nosuch;</a>")

(* ---------- Serializer ---------------------------------------------------- *)

let test_serialize_escaping () =
  let f = Frag.e "a" ~attrs:[ ("k", "a\"b<c") ] [ Frag.T "x<y&z>" ] in
  check cstr "escaped" "<a k=\"a&quot;b&lt;c\">x&lt;y&amp;z&gt;</a>"
    (Serialize.frag_to_string f)

let test_serialize_node_roundtrip () =
  let d = doc () in
  let s = Serialize.node_to_string (Doc.root d) in
  let f = Xml_parser.parse s in
  check cbool "frag equal after roundtrip" true (Frag.equal f sample)

(* ---------- Store ---------------------------------------------------------- *)

let test_store () =
  let d1 = Doc.of_frag ~uri:"a.xml" (Frag.elem "a" "1") in
  let d2 = Doc.of_frag ~uri:"b.xml" (Frag.elem "b" "2") in
  let st = Store.of_docs [ d1; d2 ] in
  check cstr "default is first" "a.xml" (Doc.uri (Store.default st));
  check cbool "find by uri" true (Store.find st "b.xml" <> None);
  check cbool "find by basename" true (Store.find st "/tmp/b.xml" <> None);
  check cbool "missing" true (Store.find st "c.xml" = None);
  check cint "all nodes" 2 (List.length (Store.nodes st))

(* ---------- Frozen ---------------------------------------------------------- *)

let test_frozen_document_order () =
  let d = doc () in
  let fz = Frozen.freeze d in
  (* Doc.all_nodes omits the document node, which freezing puts at 0 *)
  let expected = List.sort Node.compare_order (d.Doc.doc_node :: Doc.all_nodes d) in
  check cint "size is node count" (List.length expected) (Frozen.size fz);
  check cint "nodes array matches size" (Frozen.size fz) (Array.length (Frozen.nodes fz));
  List.iteri
    (fun p n ->
      check cbool
        (Printf.sprintf "position %d is document-order node %d" p n.Node.id)
        true
        (Node.equal (Frozen.node fz p) n))
    expected;
  check cbool "position 0 is the doc node" true
    ((Frozen.node fz 0).Node.kind = Node.Document);
  (* per-position symbol ids decode to the node's symbol *)
  Array.iteri
    (fun p n ->
      check cstr
        (Printf.sprintf "symbol at %d" p)
        (Node.symbol n)
        fz.Frozen.symbols.(fz.Frozen.sym.(p)))
    (Frozen.nodes fz)

let test_frozen_structure_consistency () =
  let d = doc () in
  let fz = Frozen.freeze d in
  let n = Frozen.size fz in
  check cint "doc node has no parent" (-1) fz.Frozen.parent.(0);
  check cint "doc subtree spans everything" n fz.Frozen.subtree_end.(0);
  for p = 0 to n - 1 do
    let e = fz.Frozen.subtree_end.(p) in
    check cbool (Printf.sprintf "subtree of %d is non-empty and in range" p) true
      (e > p && e <= n);
    (* every position strictly inside [p]'s subtree has its parent inside
       it too, and every position outside doesn't chain back to [p] *)
    for q = p + 1 to n - 1 do
      let inside = q < e in
      let par = fz.Frozen.parent.(q) in
      if inside then
        check cbool (Printf.sprintf "parent of %d stays in subtree of %d" q p) true
          (par >= p && par < e)
      else
        check cbool (Printf.sprintf "%d outside subtree of %d" q p) true (par < p || par >= e)
    done;
    (* sibling/child links agree with parent links *)
    let fc = fz.Frozen.first_child.(p) in
    if fc >= 0 then (
      check cint (Printf.sprintf "first child of %d" p) p fz.Frozen.parent.(fc);
      check cint "first child is the next position" (p + 1) fc);
    let ns = fz.Frozen.next_sibling.(p) in
    if ns >= 0 then (
      check cbool (Printf.sprintf "next sibling of %d shares parent" p) true
        (fz.Frozen.parent.(ns) = fz.Frozen.parent.(p));
      check cint (Printf.sprintf "sibling of %d starts after its subtree" p) e ns)
  done

let test_frozen_pos_of_node () =
  let d = doc () in
  let fz = Frozen.freeze d in
  Array.iteri
    (fun p n ->
      match Frozen.pos_of_node fz n with
      | Some p' -> check cint (Printf.sprintf "pos_of_node roundtrip %d" p) p p'
      | None -> Alcotest.failf "node at position %d not found" p)
    (Frozen.nodes fz);
  let other = Doc.of_frag ~uri:"other.xml" (Frag.elem "a" "x") in
  check cbool "foreign node has no position" true
    (Frozen.pos_of_node fz (Doc.root other) = None)

(* ---------- SAX events and error locations ------------------------------ *)

let test_sax_events () =
  let src = "<a x=\"1\"><!-- c --><b/>hi<![CDATA[ there ]]></a>" in
  let events = List.rev (Xml_parser.fold_events src ~init:[] ~f:(fun acc e -> e :: acc)) in
  check cbool "event stream" true
    (events
    = [
        Xml_parser.Start_element ("a", [ ("x", "1") ]);
        Xml_parser.Start_element ("b", []);
        Xml_parser.End_element;
        Xml_parser.Text "hi";
        Xml_parser.Text " there ";
        Xml_parser.End_element;
      ]);
  (* whitespace-only text (CDATA included) never reaches the consumer *)
  let ws = "<a>\n  <b> </b> <![CDATA[\n]]></a>" in
  let texts =
    Xml_parser.fold_events ws ~init:0 ~f:(fun acc -> function
      | Xml_parser.Text _ -> acc + 1 | _ -> acc)
  in
  check cint "no ws-only text events" 0 texts

let test_parse_error_location () =
  let expect_loc src line col =
    match Xml_parser.parse src with
    | _ -> Alcotest.failf "parse of %S should fail" src
    | exception Xml_parser.Parse_error (_, loc) ->
      check cint (Printf.sprintf "line of %S" src) line loc.Xml_parser.line;
      check cint (Printf.sprintf "col of %S" src) col loc.Xml_parser.col
  in
  (* mismatched close tag on line 2 *)
  expect_loc "<a>\n  <b></c>\n</a>" 2 9;
  (* unterminated document: error at EOF, line 3 *)
  expect_loc "<a>\n<b>\n</b>" 3 5;
  (* broken attribute syntax on line 1 *)
  expect_loc "<a x=1></a>" 1 6

(* ---------- Streaming builder ------------------------------------------- *)

let streaming_sample_xml =
  "<site><regions><europe><item id=\"i7\" featured=\"yes\"><name>H. \
   Potter</name><desc>Best &amp; <em>seller</em><!-- note --></desc></item>\n\
   <item id=\"i8\"/></europe></regions><people/></site>"

let test_streaming_matches_tree () =
  let tree_fz =
    Frozen.freeze (Xml_parser.parse_doc ~uri:"s.xml" streaming_sample_xml)
  in
  let _, stream_fz = Frozen_builder.parse ~uri:"s.xml" streaming_sample_xml in
  check cbool "streamed snapshot equals frozen tree" true
    (Frozen.structural_equal tree_fz stream_fz);
  (* the builder's document side behaves like Doc.of_frag's *)
  let sdoc, fz2 = Frozen_builder.parse ~uri:"s.xml" streaming_sample_xml in
  check cbool "builder doc indexed" true
    (Doc.node_with_path sdoc [ "site"; "regions"; "europe"; "item" ] <> None);
  check cint "doc node count matches rows" (Doc.node_count sdoc) (Frozen.size fz2)

let test_streaming_of_frag () =
  let tree_fz = Frozen.freeze (Doc.of_frag ~uri:"sample.xml" sample) in
  let _, stream_fz = Frozen_builder.of_frag ~uri:"sample.xml" sample in
  check cbool "of_frag parity on the shared sample" true
    (Frozen.structural_equal tree_fz stream_fz);
  check cbool "text root rejected" true
    (match Frozen_builder.of_frag (Frag.T "x") with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_builder_misuse () =
  let b = Frozen_builder.create () in
  check cbool "close without open" true
    (match Frozen_builder.close_element b with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Frozen_builder.open_element b "r" [];
  Frozen_builder.close_element b;
  check cbool "second root rejected" true
    (match Frozen_builder.open_element b "r2" [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let b2 = Frozen_builder.create () in
  Frozen_builder.open_element b2 "r" [];
  check cbool "finish with open elements rejected" true
    (match Frozen_builder.finish b2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Position index ---------------------------------------------- *)

let counter name =
  match Xl_obs.Obs.Counter.find name with
  | Some c -> Xl_obs.Obs.Counter.value c
  | None -> Alcotest.failf "counter %s not registered" name

let test_pos_index_dense_and_sparse () =
  Xl_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Xl_obs.Obs.set_enabled false) @@ fun () ->
  let dense_before = counter "frozen_pos_dense" in
  let fz = Frozen.freeze (doc ()) in
  check cbool "fresh document takes the dense index" true
    (Frozen.pos_index_is_dense fz);
  check cint "dense counter ticked" (dense_before + 1) (counter "frozen_pos_dense");
  (* a document with a hole in its id range must fall back to the
     hashtable: hand-assemble one the way the evaluator's element
     constructor would *)
  let mk kind name value =
    {
      Node.id = Doc.fresh_id ();
      kind;
      name;
      value;
      parent = None;
      children = [];
      attributes = [];
      dewey = [];
    }
  in
  let doc_node = mk Node.Document "" "" in
  ignore (Doc.fresh_id ());
  (* the hole *)
  let root = mk Node.Element "r" "" in
  root.Node.dewey <- Dewey.root;
  root.Node.parent <- Some doc_node;
  doc_node.Node.children <- [ root ];
  let by_id = Hashtbl.create 4 in
  List.iter (fun n -> Hashtbl.replace by_id n.Node.id n) [ doc_node; root ];
  let gappy = { Doc.uri = "gap.xml"; doc_node; root; by_id } in
  let sparse_before = counter "frozen_pos_sparse" in
  let gz = Frozen.freeze gappy in
  check cbool "gappy ids fall back to the hashtable" false
    (Frozen.pos_index_is_dense gz);
  check cint "sparse counter ticked" (sparse_before + 1)
    (counter "frozen_pos_sparse");
  check cbool "sparse lookup still works" true
    (Frozen.pos_of_node gz root = Some 1)

(* ---------- Binary snapshots -------------------------------------------- *)

let test_snapshot_roundtrip () =
  let d = doc () in
  let fz = Frozen.freeze d in
  let loaded = Snapshot.of_string (Snapshot.to_string fz) in
  check cbool "round-trip is structurally equal" true
    (Frozen.structural_equal fz loaded);
  (* node-for-node: kinds, names, values and Dewey codes per position *)
  let a = Frozen.nodes fz and b = Frozen.nodes loaded in
  check cint "same node count" (Array.length a) (Array.length b);
  Array.iteri
    (fun p (x : Node.t) ->
      let y = b.(p) in
      check cbool
        (Printf.sprintf "node %d matches" p)
        true
        (x.Node.kind = y.Node.kind
        && x.Node.name = y.Node.name
        && x.Node.value = y.Node.value
        && x.Node.dewey = y.Node.dewey))
    a;
  (* the rebuilt tree serializes identically and is fully indexed *)
  check cstr "serialization matches"
    (Serialize.node_to_string (Doc.root d))
    (Serialize.node_to_string (Doc.root (Frozen.doc loaded)));
  check cstr "uri preserved" (Doc.uri d) (Doc.uri (Frozen.doc loaded));
  check cbool "loaded doc indexed" true
    (Doc.node_with_path (Frozen.doc loaded) [ "site"; "regions"; "europe"; "item" ]
    <> None)

let test_snapshot_lazy_tree () =
  let fz = Frozen.freeze (doc ()) in
  let loaded = Snapshot.of_string (Snapshot.to_string fz) in
  check cbool "tree deferred right after load" false (Frozen.tree_forced loaded);
  check cint "arrays usable without the tree" (Frozen.size fz) (Frozen.size loaded);
  ignore (Frozen.nodes loaded);
  check cbool "tree materialized on demand" true (Frozen.tree_forced loaded)

let test_snapshot_rejects_corruption () =
  let fz = Frozen.freeze (doc ()) in
  let snap = Snapshot.to_string fz in
  let rejects what s =
    check cbool what true
      (match Snapshot.of_string s with
      | exception Snapshot.Corrupt _ -> true
      | _ -> false)
  in
  rejects "empty input" "";
  rejects "truncated header" (String.sub snap 0 10);
  rejects "truncated body" (String.sub snap 0 (String.length snap - 7));
  rejects "bad magic" ("XLBROKEN" ^ String.sub snap 8 (String.length snap - 8));
  (* future format version *)
  let future = Bytes.of_string snap in
  Bytes.set future 8 '\xff';
  rejects "unsupported version" (Bytes.to_string future);
  (* single flipped bytes all along the payload trip the checksum *)
  let len = String.length snap in
  List.iter
    (fun frac ->
      let i = 12 + (frac * (len - 13) / 100) in
      let b = Bytes.of_string snap in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
      rejects (Printf.sprintf "flipped byte at %d%%" frac) (Bytes.to_string b))
    [ 0; 25; 50; 75; 100 ]

let test_snapshot_store_reuse () =
  let _, fz = Frozen_builder.of_frag ~uri:"sample.xml" sample in
  let store = Store.of_frozen [ fz ] in
  Store.prepare store;
  (* build_index must reuse the registered snapshot, not re-freeze *)
  check cbool "store reuses the supplied snapshot" true
    (match Store.frozen_docs store with
    | [ fz' ] -> fz' == fz
    | _ -> false);
  check cbool "store queries work" true
    (List.length (Store.nodes_with_tag store "item") = 1)

(* ---------- Properties ------------------------------------------------------ *)

let gen_frag =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "item"; "name" ] in
  let attr = pair (oneofl [ "id"; "x" ]) (string_size ~gen:(char_range 'a' 'z') (1 -- 6)) in
  let text = string_size ~gen:(char_range 'a' 'z') (1 -- 8) in
  fix
    (fun self depth ->
      if depth = 0 then map (fun s -> Frag.T s) text
      else
        frequency
          [
            (1, map (fun s -> Frag.T s) text);
            ( 3,
              map3
                (fun t attrs kids ->
                  (* attribute names must be unique per element, and
                     adjacent text children merge on reparse *)
                  let attrs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs in
                  let rec merge = function
                    | Frag.T a :: Frag.T b :: rest -> merge (Frag.T (a ^ b) :: rest)
                    | x :: rest -> x :: merge rest
                    | [] -> []
                  in
                  Frag.E (t, attrs, merge kids))
                tag (list_size (0 -- 2) attr)
                (list_size (0 -- 3) (self (depth - 1))) );
          ])
    2

let rec merge_texts = function
  | Frag.T a :: Frag.T b :: rest -> merge_texts (Frag.T (a ^ b) :: rest)
  | Frag.E (t, attrs, kids) :: rest -> Frag.E (t, attrs, merge_texts kids) :: merge_texts rest
  | x :: rest -> x :: merge_texts rest
  | [] -> []

let gen_doc_frag =
  QCheck2.Gen.map
    (fun kids -> Frag.E ("root", [], merge_texts kids))
    QCheck2.Gen.(list_size (0 -- 4) gen_frag)

let prop_roundtrip =
  QCheck2.Test.make ~name:"serialize/parse roundtrip" ~count:200
    ~print:Serialize.frag_to_string gen_doc_frag
    (fun f ->
      (* whitespace-only text nodes are dropped by the parser, so only
         generate non-ws text (the generator above does) *)
      let s = Serialize.frag_to_string f in
      Frag.equal (Xml_parser.parse s) f)

let prop_dewey_total_order =
  let open QCheck2 in
  Test.make ~name:"dewey compare is a total order" ~count:500
    Gen.(triple (list_size (1 -- 4) (1 -- 5)) (list_size (1 -- 4) (1 -- 5)) (list_size (1 -- 4) (1 -- 5)))
    (fun (a, b, c) ->
      let ( <= ) x y = Dewey.compare x y <= 0 in
      (* antisymmetry + transitivity spot checks *)
      (not (a <= b) || not (b <= a) || Dewey.compare a b = 0)
      && ((not (a <= b)) || (not (b <= c)) || a <= c))

let prop_tag_paths_unique_prefix =
  QCheck2.Test.make ~name:"node tag_path starts with the root tag" ~count:100
    gen_doc_frag (fun f ->
      let d = Doc.of_frag f in
      List.for_all
        (fun n ->
          match Node.tag_path n with "root" :: _ -> true | _ -> false)
        (Doc.nodes d))

let () =
  Alcotest.run "xl_xml"
    [
      ( "dewey",
        [
          Alcotest.test_case "order" `Quick test_dewey_order;
          Alcotest.test_case "ancestor" `Quick test_dewey_ancestor;
          Alcotest.test_case "strings" `Quick test_dewey_strings;
        ] );
      ("frag", [ Alcotest.test_case "basics" `Quick test_frag_basics ]);
      ( "doc",
        [
          Alcotest.test_case "structure" `Quick test_doc_structure;
          Alcotest.test_case "tag_path" `Quick test_tag_path;
          Alcotest.test_case "attribute path" `Quick test_attribute_path;
          Alcotest.test_case "document order" `Quick test_document_order;
          Alcotest.test_case "find_by_id" `Quick test_find_by_id;
          Alcotest.test_case "node counts" `Quick test_all_nodes_count;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata and comments" `Quick test_parse_cdata_comments;
          Alcotest.test_case "prolog and doctype" `Quick test_parse_prolog_doctype;
          Alcotest.test_case "whitespace dropped" `Quick test_parse_whitespace_dropped;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "sax events" `Quick test_sax_events;
          Alcotest.test_case "error locations" `Quick test_parse_error_location;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "matches tree path" `Quick test_streaming_matches_tree;
          Alcotest.test_case "of_frag parity" `Quick test_streaming_of_frag;
          Alcotest.test_case "builder misuse" `Quick test_builder_misuse;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "lazy tree" `Quick test_snapshot_lazy_tree;
          Alcotest.test_case "rejects corruption" `Quick test_snapshot_rejects_corruption;
          Alcotest.test_case "store reuse" `Quick test_snapshot_store_reuse;
        ] );
      ( "serializer",
        [
          Alcotest.test_case "escaping" `Quick test_serialize_escaping;
          Alcotest.test_case "roundtrip" `Quick test_serialize_node_roundtrip;
        ] );
      ("store", [ Alcotest.test_case "basics" `Quick test_store ]);
      ( "frozen",
        [
          Alcotest.test_case "document order" `Quick test_frozen_document_order;
          Alcotest.test_case "structure consistency" `Quick test_frozen_structure_consistency;
          Alcotest.test_case "pos_of_node roundtrip" `Quick test_frozen_pos_of_node;
          Alcotest.test_case "dense and sparse index" `Quick test_pos_index_dense_and_sparse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_dewey_total_order; prop_tag_paths_unique_prefix ] );
    ]
