(* The property-based differential testing harness (lib/fuzz):

   - a 200-case deterministic campaign of the main equivalence property
     (learned query extent-equivalent to the target on the training
     document and on fresh documents of the same DTD);
   - bit-reproducibility of the campaign report across worker counts;
   - injected learner bugs (dropped condition, widened path) are caught
     by the differential oracle and minimized to tiny cases;
   - store discipline under the fuzz workload: a never-prepared store
     evaluates identically to a prepared one, and a strict store fails
     loudly when an index is demanded before Store.prepare;
   - pinned regression fixtures (examples/fuzz): minimized
     counterexamples that exposed real pipeline bugs during harness
     development, re-learned and re-checked here. *)

module Fuzz = Xl_fuzz.Fuzz
module Case = Xl_fuzz.Case
module Props = Xl_fuzz.Props
module Pool = Xl_exec.Pool
module Store = Xl_xml.Store
module Learn = Xl_core.Learn

let seed = 20040301

(* ---------- the main campaign ------------------------------------------ *)

let test_campaign () =
  let pool = Pool.create ~domains:4 () in
  let r = Fuzz.run ~pool ~cases:200 ~seed () in
  let failures =
    String.concat "; "
      (List.map
         (fun (c : Fuzz.case_report) ->
           Printf.sprintf "case %d: %s" c.Fuzz.index
             (match c.Fuzz.failure with
             | Some f -> Props.failure_to_string f
             | None -> "?"))
         r.Fuzz.failed)
  in
  Alcotest.(check string) "no surviving counterexamples" "" failures;
  Alcotest.(check int) "no admission fallbacks" 0 r.Fuzz.fallbacks

let test_determinism () =
  let sequential = Fuzz.run ~cases:25 ~seed () in
  let pool = Pool.create ~domains:3 () in
  let parallel = Fuzz.run ~pool ~cases:25 ~seed () in
  Alcotest.(check string)
    "report identical at -j 1 and -j 3"
    (Fuzz.report_to_string sequential)
    (Fuzz.report_to_string parallel)

(* ---------- injected bugs ---------------------------------------------- *)

let check_bug_caught name bug =
  let caught = ref 0 in
  for index = 0 to 19 do
    let r = Fuzz.run_case ~bug ~seed ~index () in
    match r.Fuzz.failure with
    | None -> ()
    | Some _ ->
      incr caught;
      if r.Fuzz.training_size > 15 then
        Alcotest.failf "%s: case %d minimized to %d element nodes (> 15)"
          name index r.Fuzz.training_size
  done;
  if !caught = 0 then
    Alcotest.failf "%s: no case in 0..19 caught the injected bug" name

let test_drop_cond_caught () =
  check_bug_caught "drop-cond" Props.Drop_learned_cond

let test_widen_path_caught () =
  check_bug_caught "widen-path" Props.Widen_learned_path

(* ---------- store discipline ------------------------------------------- *)

let test_unprepared_store_parity () =
  List.iter
    (fun index ->
      let case = Case.generate ~seed ~index in
      let prepared = Case.store_of ~prepare:true case in
      let never_prepared = Case.store_of ~prepare:false case in
      Alcotest.(check string)
        (Printf.sprintf "case %d: prepared = never-prepared" index)
        (Props.eval_to_string case.Case.target prepared)
        (Props.eval_to_string case.Case.target never_prepared))
    [ 0; 1; 2; 3; 4 ]

let test_strict_store_fails_loudly () =
  let case = Case.generate ~seed ~index:0 in
  let store = Case.store_of ~prepare:false ~strict:true case in
  (match Store.nodes_with_tag store "r" with
  | _ -> Alcotest.fail "strict unprepared store did not raise"
  | exception Failure _ -> ());
  (* prepare lifts the restriction without turning strictness off *)
  Store.prepare store;
  Alcotest.(check bool)
    "index demand succeeds after prepare" true
    (ignore (Store.nodes_with_tag store "r");
     true)

(* ---------- pinned regression fixtures --------------------------------- *)

let check_fixture (f : Xl_fuzz_fixtures.Fixtures.t) () =
  let open Xl_fuzz_fixtures in
  let dtd = Xl_schema.Dtd_parser.parse ~root:f.Fixtures.root f.Fixtures.dtd in
  let doc = Xl_xml.Xml_parser.parse_doc ~uri:"fixture.xml" f.Fixtures.training in
  Alcotest.(check bool)
    "fixture document valid for its DTD" true
    (Xl_schema.Validate.is_valid dtd doc);
  let store = Store.of_docs [ doc ] in
  Store.prepare store;
  Store.set_strict store true;
  let scenario =
    Xl_core.Scenario.make ~description:f.Fixtures.bug ~source_dtd:dtd ~store
      ~target:f.Fixtures.target f.Fixtures.name
  in
  let r = Learn.run scenario in
  Alcotest.(check bool) "learning verified" true r.Learn.verified;
  Alcotest.(check string)
    "learned query extent-equivalent on the training document"
    (Props.eval_to_string f.Fixtures.target store)
    (Props.eval_to_string r.Learn.learned store)

let fixture_tests =
  List.map
    (fun (f : Xl_fuzz_fixtures.Fixtures.t) ->
      Alcotest.test_case f.Xl_fuzz_fixtures.Fixtures.name `Quick
        (check_fixture f))
    Xl_fuzz_fixtures.Fixtures.all

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "fuzz"
    [
      ( "campaign",
        [
          Alcotest.test_case "200 cases, seed 20040301" `Slow test_campaign;
          Alcotest.test_case "report deterministic across -j" `Quick
            test_determinism;
        ] );
      ( "injected-bugs",
        [
          Alcotest.test_case "dropped condition caught and minimized" `Slow
            test_drop_cond_caught;
          Alcotest.test_case "widened path caught and minimized" `Slow
            test_widen_path_caught;
        ] );
      ( "store",
        [
          Alcotest.test_case "never-prepared store parity" `Quick
            test_unprepared_store_parity;
          Alcotest.test_case "strict mode fails loudly before prepare" `Quick
            test_strict_store_fails_loudly;
        ] );
      ("fixtures", fixture_tests);
    ]
