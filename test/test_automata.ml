(* Unit and property tests for the automata substrate (xl_automata),
   including Angluin's L*. *)

open Xl_automata

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

(* ---------- Alphabet ------------------------------------------------------ *)

let test_alphabet () =
  let a = Alphabet.create () in
  let i1 = Alphabet.intern a "site" in
  let i2 = Alphabet.intern a "item" in
  check cint "distinct ids" 1 i2;
  check cint "idempotent intern" i1 (Alphabet.intern a "site");
  check cbool "name roundtrip" true (Alphabet.name a i2 = "item");
  check cbool "find" true (Alphabet.find a "item" = Some i2);
  check cbool "find missing" true (Alphabet.find a "nope" = None);
  check cbool "encode/decode" true
    (Alphabet.decode a (Alphabet.encode a [ "site"; "item" ]) = [ "site"; "item" ]);
  check cbool "encode_opt missing" true (Alphabet.encode_opt a [ "nope" ] = None)

(* ---------- Regex / DFA ---------------------------------------------------- *)

let k = 4

(* the running path language: 0 1 (2|3) over a 4-symbol alphabet *)
let sample_regex = Regex.(seq [ Sym 0; Sym 1; Alt (Sym 2, Sym 3) ])
let sample_dfa () = Regex.to_dfa ~alphabet_size:k sample_regex

let test_regex_matching () =
  let d = sample_dfa () in
  check cbool "accepts 012" true (Dfa.accepts d [ 0; 1; 2 ]);
  check cbool "accepts 013" true (Dfa.accepts d [ 0; 1; 3 ]);
  check cbool "rejects 01" false (Dfa.accepts d [ 0; 1 ]);
  check cbool "rejects 0123" false (Dfa.accepts d [ 0; 1; 2; 3 ]);
  check cbool "rejects empty" false (Dfa.accepts d [])

let test_star_any () =
  let d = Regex.to_dfa ~alphabet_size:k Regex.(Seq (Star Any, Sym 2)) in
  check cbool "ends with 2" true (Dfa.accepts d [ 3; 1; 0; 2 ]);
  check cbool "just 2" true (Dfa.accepts d [ 2 ]);
  check cbool "not ending with 2" false (Dfa.accepts d [ 2; 3 ])

let test_dfa_ops () =
  let d = sample_dfa () in
  let comp = Dfa.complement d in
  check cbool "complement flips" true (Dfa.accepts comp [ 0 ] && not (Dfa.accepts comp [ 0; 1; 2 ]));
  let inter = Dfa.intersection d (Regex.to_dfa ~alphabet_size:k Regex.(seq [ Sym 0; Sym 1; Sym 2 ])) in
  check cbool "intersection" true (Dfa.accepts inter [ 0; 1; 2 ] && not (Dfa.accepts inter [ 0; 1; 3 ]));
  let diff = Dfa.difference d (Regex.to_dfa ~alphabet_size:k Regex.(seq [ Sym 0; Sym 1; Sym 2 ])) in
  check cbool "difference" true (Dfa.accepts diff [ 0; 1; 3 ] && not (Dfa.accepts diff [ 0; 1; 2 ]))

let test_shortest_and_empty () =
  let d = sample_dfa () in
  check cbool "shortest accepted has length 3" true
    (match Dfa.shortest_accepted d with Some w -> List.length w = 3 | None -> false);
  check cbool "empty language" true (Dfa.is_empty (Dfa.empty ~alphabet_size:k));
  check cbool "universal accepts empty word" true
    (Dfa.accepts (Dfa.universal ~alphabet_size:k) [])

let test_equivalence_witness () =
  let d1 = sample_dfa () in
  let d2 = Regex.to_dfa ~alphabet_size:k Regex.(seq [ Sym 0; Sym 1; Sym 2 ]) in
  (match Dfa.equivalent d1 d2 with
  | Ok () -> Alcotest.fail "should differ"
  | Error w ->
    check cbool "witness separates" true (Dfa.accepts d1 w <> Dfa.accepts d2 w));
  check cbool "self equivalence" true (Dfa.equivalent d1 d1 = Ok ())

let test_minimize () =
  let d = sample_dfa () in
  let m = Dfa.minimize d in
  check cbool "language preserved" true (Dfa.equivalent d m = Ok ());
  check cbool "no larger" true (Dfa.state_count m <= Dfa.state_count d);
  (* minimal DFA for 01(2|3): q0 q1 q2 accept + sink = 5 states *)
  check cint "minimal size" 5 (Dfa.state_count m)

let test_with_start_and_extend () =
  let d = Dfa.minimize (sample_dfa ()) in
  let q1 = Dfa.step d d.Dfa.start 0 in
  let suffix = Dfa.with_start d q1 in
  check cbool "left quotient" true (Dfa.accepts suffix [ 1; 2 ] && not (Dfa.accepts suffix [ 0; 1; 2 ]));
  let wide = Dfa.extend_alphabet d ~alphabet_size:(k + 3) in
  check cbool "old words unchanged" true (Dfa.accepts wide [ 0; 1; 2 ]);
  check cbool "new symbols rejected" false (Dfa.accepts wide [ 0; 1; 5 ])

let test_accepted_up_to () =
  let d = sample_dfa () in
  check cint "exactly two words of length <= 3" 2 (List.length (Dfa.accepted_up_to d 3))

(* ---------- DFA -> regex (state elimination) -------------------------------- *)

let test_of_dfa_roundtrip () =
  let d = Dfa.minimize (sample_dfa ()) in
  let r = Regex.of_dfa d in
  let d2 = Regex.to_dfa ~alphabet_size:k r in
  check cbool "language preserved by extraction" true (Dfa.equivalent d d2 = Ok ())

let test_regex_print () =
  let names = [| "a"; "b"; "c"; "d" |] in
  check Alcotest.string "pretty" "a/b/(c|d)"
    (Regex.to_string ~sep:"/" ~name:(fun i -> names.(i)) sample_regex)

(* ---------- NFA -------------------------------------------------------------- *)

let test_nfa_direct () =
  let n = Nfa.create ~alphabet_size:2 ~states:3 ~start:0 ~finals:[ 2 ] in
  Nfa.add_transition n 0 0 1;
  Nfa.add_epsilon n 1 2;
  check cbool "nfa accepts via epsilon" true (Nfa.accepts n [ 0 ]);
  check cbool "nfa rejects" false (Nfa.accepts n [ 1 ]);
  let d = Nfa.to_dfa n in
  check cbool "determinized agrees" true (Dfa.accepts d [ 0 ] && not (Dfa.accepts d [ 1 ]))

(* ---------- L* ---------------------------------------------------------------- *)

let exact_teacher target =
  {
    Lstar.membership = (fun w -> Dfa.accepts target w);
    membership_batch = None;
    equivalence =
      (fun h -> match Dfa.equivalent h target with Ok () -> None | Error w -> Some w);
  }

let test_lstar_learns_sample () =
  let target = Dfa.minimize (sample_dfa ()) in
  let learned, stats = Lstar.learn ~alphabet_size:k (exact_teacher target) in
  check cbool "language learned exactly" true (Dfa.equivalent learned target = Ok ());
  check cbool "used some membership queries" true (stats.Lstar.membership_queries > 0)

let test_lstar_with_seed () =
  let target = Dfa.minimize (sample_dfa ()) in
  let learned, _ =
    Lstar.learn ~init:[ [ 0; 1; 2 ] ] ~alphabet_size:k (exact_teacher target)
  in
  check cbool "seeded learning converges" true (Dfa.equivalent learned target = Ok ())

let test_lstar_empty_and_universal () =
  let empty = Dfa.empty ~alphabet_size:2 in
  let learned, _ = Lstar.learn ~alphabet_size:2 (exact_teacher empty) in
  check cbool "learns the empty language" true (Dfa.equivalent learned empty = Ok ());
  let uni = Dfa.universal ~alphabet_size:2 in
  let learned, _ = Lstar.learn ~alphabet_size:2 (exact_teacher uni) in
  check cbool "learns the universal language" true (Dfa.equivalent learned uni = Ok ())

(* random regex generator for property tests *)
let gen_regex =
  let open QCheck2.Gen in
  fix
    (fun self depth ->
      if depth = 0 then map (fun s -> Regex.Sym s) (0 -- (k - 1))
      else
        frequency
          [
            (3, map (fun s -> Regex.Sym s) (0 -- (k - 1)));
            (1, pure Regex.Eps);
            (2, map2 (fun a b -> Regex.Seq (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> Regex.Alt (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map (fun a -> Regex.Star a) (self (depth - 1)));
          ])
    3

let prop_lstar_learns_random_regex =
  QCheck2.Test.make ~name:"L* learns random regular languages exactly" ~count:40
    gen_regex (fun r ->
      let target = Dfa.minimize (Regex.to_dfa ~alphabet_size:k r) in
      let learned, _ = Lstar.learn ~alphabet_size:k (exact_teacher target) in
      Dfa.equivalent learned target = Ok ())

let prop_of_dfa_roundtrip =
  QCheck2.Test.make ~name:"DFA -> regex -> DFA preserves the language" ~count:60
    gen_regex (fun r ->
      let d = Dfa.minimize (Regex.to_dfa ~alphabet_size:k r) in
      let d2 = Regex.to_dfa ~alphabet_size:k (Regex.of_dfa d) in
      Dfa.equivalent d d2 = Ok ())

let prop_minimize_preserves =
  QCheck2.Test.make ~name:"minimization preserves the language" ~count:60 gen_regex
    (fun r ->
      let d = Regex.to_dfa ~alphabet_size:k r in
      Dfa.equivalent d (Dfa.minimize d) = Ok ())

let prop_product_correct =
  QCheck2.Test.make ~name:"intersection agrees pointwise" ~count:40
    QCheck2.Gen.(triple gen_regex gen_regex (list_size (0 -- 5) (0 -- (k - 1))))
    (fun (r1, r2, w) ->
      let d1 = Regex.to_dfa ~alphabet_size:k r1 in
      let d2 = Regex.to_dfa ~alphabet_size:k r2 in
      Dfa.accepts (Dfa.intersection d1 d2) w = (Dfa.accepts d1 w && Dfa.accepts d2 w))

let () =
  Alcotest.run "xl_automata"
    [
      ("alphabet", [ Alcotest.test_case "interning" `Quick test_alphabet ]);
      ( "dfa",
        [
          Alcotest.test_case "regex matching" `Quick test_regex_matching;
          Alcotest.test_case "star-any" `Quick test_star_any;
          Alcotest.test_case "boolean ops" `Quick test_dfa_ops;
          Alcotest.test_case "shortest/empty" `Quick test_shortest_and_empty;
          Alcotest.test_case "equivalence witness" `Quick test_equivalence_witness;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "with_start/extend" `Quick test_with_start_and_extend;
          Alcotest.test_case "accepted_up_to" `Quick test_accepted_up_to;
        ] );
      ( "regex",
        [
          Alcotest.test_case "of_dfa roundtrip" `Quick test_of_dfa_roundtrip;
          Alcotest.test_case "printing" `Quick test_regex_print;
        ] );
      ("nfa", [ Alcotest.test_case "epsilon and subset" `Quick test_nfa_direct ]);
      ( "lstar",
        [
          Alcotest.test_case "learns the sample path language" `Quick test_lstar_learns_sample;
          Alcotest.test_case "seeded" `Quick test_lstar_with_seed;
          Alcotest.test_case "degenerate languages" `Quick test_lstar_empty_and_universal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lstar_learns_random_regex;
            prop_of_dfa_roundtrip;
            prop_minimize_preserves;
            prop_product_correct;
          ] );
    ]
