(* Parity tests for the evaluator fast paths: the indexed / hash-join
   evaluation must be observationally equivalent to the naive nested-loop
   walk — same node sequences (ids and order) on every benchmark query,
   and identical learner interaction counts across the Figure-16 suites.

   The sweeps fan out on a {!Xl_exec.Pool}: each work item (a query, or a
   whole scenario run) is checked inside a worker domain and reduced to a
   comparable string; the Alcotest assertions run afterwards on the main
   domain.  Stores shared by several work items are [Store.prepare]d
   before the fan-out, per the pool's domain-confinement contract. *)

open Xl_xquery
module Xml = Xl_xml

let pool = Xl_exec.Pool.create ()

(* A result fingerprint that is stable across evaluation strategies:
   store-resident nodes print as their id (identity + order check),
   constructed nodes — whose ids are fresh per evaluation — print as
   their serialized form. *)
let fingerprint (store : Xml.Store.t) (v : Value.t) : string =
  String.concat "|"
    (List.map
       (fun (it : Value.item) ->
         match it with
         | Value.Node n -> (
           match Xml.Store.find_node_by_id store n.Xml.Node.id with
           | Some m when Xml.Node.equal m n -> Printf.sprintf "#%d" n.Xml.Node.id
           | _ -> "C:" ^ Xml.Serialize.node_to_string n)
         | Value.Atom a -> "A:" ^ Value.atom_to_string a)
       v)

(* Evaluate every query under both strategies — concurrently, one worker
   per query, each with its own pair of contexts (evaluation contexts
   carry mutable caches and must stay domain-confined) — then compare
   fingerprints (or exception messages, when both raise). *)
let check_query_parity ~suite (store : Xml.Store.t)
    (queries : (string * string) list) =
  Xml.Store.prepare store;
  let outcomes =
    Xl_exec.Pool.map pool
      (fun (qid, text) ->
        let label = Printf.sprintf "%s/%s" suite qid in
        let ast = Parser.parse text in
        let run ~fast_paths =
          let ctx = Eval.make_ctx ~fast_paths store in
          match Eval.run ctx ast with
          | v -> Ok (fingerprint store v)
          | exception e -> Error (Printexc.to_string e)
        in
        (label, run ~fast_paths:true, run ~fast_paths:false))
      queries
  in
  List.iter
    (fun (label, fast, naive) ->
      match (fast, naive) with
      | Ok a, Ok b -> Alcotest.(check string) label b a
      | Error a, Error b -> Alcotest.(check string) (label ^ " (raises)") b a
      | Ok _, Error e ->
        Alcotest.failf "%s: naive evaluation raised %s but fast path succeeded"
          label e
      | Error e, Ok _ ->
        Alcotest.failf "%s: fast path raised %s but naive evaluation succeeded"
          label e)
    outcomes

let test_xmark_parity () =
  List.iter
    (fun seed ->
      let doc =
        Xl_workload.Xmark_gen.generate ~seed Xl_workload.Xmark_gen.tiny_scale
      in
      let store = Xml.Store.of_docs [ doc ] in
      check_query_parity
        ~suite:(Printf.sprintf "xmark-seed%d" seed)
        store
        (List.map
           (fun (q : Xl_workload.Xmark_queries.query) -> (q.id, q.text))
           Xl_workload.Xmark_queries.all))
    [ 1; 2; 3 ]

let test_xmp_parity () =
  let store = Xl_workload.Xmp_data.store () in
  check_query_parity ~suite:"xmp" store
    (List.map
       (fun (q : Xl_workload.Xmp_queries.query) -> (q.id, q.text))
       Xl_workload.Xmp_queries.all)

(* The randomized fuzz corpus sweeps far more DTD/document/query shapes
   through the hash-join fast paths than the paper suites do; a fixed
   25-seed slice keeps the sweep deterministic.  Each worker generates
   its case, evaluates the target query under both strategies on its
   own store and reduces to a serialized form (node-identity free, so
   the comparison is meaningful across separately built stores). *)
let test_fuzz_corpus_parity () =
  let outcomes =
    Xl_exec.Pool.map pool
      (fun index ->
        let case = Xl_fuzz.Case.generate ~seed:20040301 ~index in
        let store = Xl_fuzz.Case.store_of ~prepare:true case in
        let run ~fast_paths =
          Xl_fuzz.Props.eval_to_string ~fast_paths case.Xl_fuzz.Case.target
            store
        in
        (index, run ~fast_paths:true, run ~fast_paths:false))
      (List.init 25 Fun.id)
  in
  List.iter
    (fun (index, fast, naive) ->
      Alcotest.(check string)
        (Printf.sprintf "fuzz case %d hash-join vs naive" index)
        naive fast)
    outcomes

(* The learner drives the evaluator on every membership/equivalence
   query; identical interaction counts under both strategies show the
   fast paths never change what the teacher observes. *)
let stats_row (name : string) (r : Xl_core.Learn.result) : string =
  let s = r.Xl_core.Learn.stats in
  Printf.sprintf "%s dd=%d(%d) mq=%d eq=%d ce=%d cb=%d(%d) ob=%d r=(%d,%d,%d) auto=%d restarts=%d verified=%b"
    name s.Xl_core.Stats.dd s.Xl_core.Stats.dd_terminals s.Xl_core.Stats.mq
    s.Xl_core.Stats.eq s.Xl_core.Stats.ce s.Xl_core.Stats.cb
    s.Xl_core.Stats.cb_terminals s.Xl_core.Stats.ob s.Xl_core.Stats.reduced_r1
    s.Xl_core.Stats.reduced_r2 s.Xl_core.Stats.reduced_both
    s.Xl_core.Stats.auto_known s.Xl_core.Stats.restarts
    r.Xl_core.Learn.verified

let fig16_scenarios () =
  let scenarios =
    List.map (fun (n, sc) -> ("xmark", n, sc)) (Xl_workload.Xmark_scenarios.all ())
    @ List.map (fun (n, sc) -> ("xmp", n, sc)) (Xl_workload.Xmp_scenarios.all ())
  in
  (* the scenarios of one suite share a store; freeze its lazy indexes
     while still single-domain *)
  List.iter
    (fun (_, _, sc) -> Xml.Store.prepare sc.Xl_core.Scenario.store)
    scenarios;
  scenarios

let run_learner_suite ~fast_paths scenarios : string list =
  let config = { Xl_core.Learn.default_config with fast_paths } in
  Xl_exec.Pool.map pool
    (fun (suite, name, sc) ->
      let label = suite ^ "-" ^ name in
      match Xl_core.Learn.run ~config sc with
      | r -> stats_row label r
      | exception e -> label ^ " FAILED " ^ Printexc.to_string e)
    scenarios

let test_learner_parity () =
  let scenarios = fig16_scenarios () in
  let fast = run_learner_suite ~fast_paths:true scenarios in
  let naive = run_learner_suite ~fast_paths:false scenarios in
  Alcotest.(check int) "same number of scenarios" (List.length naive)
    (List.length fast);
  List.iter2
    (fun f n -> Alcotest.(check string) "interaction counts" n f)
    fast naive

let () =
  Alcotest.run "perf-parity"
    [
      ( "query-results",
        [
          Alcotest.test_case "xmark tiny instances, 3 seeds" `Quick
            test_xmark_parity;
          Alcotest.test_case "xmp use-case store" `Quick test_xmp_parity;
          Alcotest.test_case "randomized fuzz corpus, 25 seeds" `Quick
            test_fuzz_corpus_parity;
        ] );
      ( "learner",
        [
          Alcotest.test_case "fig16 suites, fast vs naive" `Slow
            test_learner_parity;
        ] );
    ]
