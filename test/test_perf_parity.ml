(* Parity tests for the evaluator fast paths: the indexed / hash-join
   evaluation must be observationally equivalent to the naive nested-loop
   walk — same node sequences (ids and order) on every benchmark query,
   and identical learner interaction counts across the Figure-16 suites.

   The sweeps fan out on a {!Xl_exec.Pool}: each work item (a query, or a
   whole scenario run) is checked inside a worker domain and reduced to a
   comparable string; the Alcotest assertions run afterwards on the main
   domain.  Stores shared by several work items are [Store.prepare]d
   before the fan-out, per the pool's domain-confinement contract. *)

open Xl_xquery
module Xml = Xl_xml

let pool = Xl_exec.Pool.create ()

(* A result fingerprint that is stable across evaluation strategies:
   store-resident nodes print as their id (identity + order check),
   constructed nodes — whose ids are fresh per evaluation — print as
   their serialized form. *)
let fingerprint (store : Xml.Store.t) (v : Value.t) : string =
  String.concat "|"
    (List.map
       (fun (it : Value.item) ->
         match it with
         | Value.Node n -> (
           match Xml.Store.find_node_by_id store n.Xml.Node.id with
           | Some m when Xml.Node.equal m n -> Printf.sprintf "#%d" n.Xml.Node.id
           | _ -> "C:" ^ Xml.Serialize.node_to_string n)
         | Value.Atom a -> "A:" ^ Value.atom_to_string a)
       v)

(* Evaluate every query under both strategies — concurrently, one worker
   per query, each with its own pair of contexts (evaluation contexts
   carry mutable caches and must stay domain-confined) — then compare
   fingerprints (or exception messages, when both raise). *)
let check_query_parity ~suite (store : Xml.Store.t)
    (queries : (string * string) list) =
  Xml.Store.prepare store;
  let outcomes =
    Xl_exec.Pool.map pool
      (fun (qid, text) ->
        let label = Printf.sprintf "%s/%s" suite qid in
        let ast = Parser.parse text in
        let run ~fast_paths =
          let ctx = Eval.make_ctx ~fast_paths store in
          match Eval.run ctx ast with
          | v -> Ok (fingerprint store v)
          | exception e -> Error (Printexc.to_string e)
        in
        (label, run ~fast_paths:true, run ~fast_paths:false))
      queries
  in
  List.iter
    (fun (label, fast, naive) ->
      match (fast, naive) with
      | Ok a, Ok b -> Alcotest.(check string) label b a
      | Error a, Error b -> Alcotest.(check string) (label ^ " (raises)") b a
      | Ok _, Error e ->
        Alcotest.failf "%s: naive evaluation raised %s but fast path succeeded"
          label e
      | Error e, Ok _ ->
        Alcotest.failf "%s: fast path raised %s but naive evaluation succeeded"
          label e)
    outcomes

let test_xmark_parity () =
  List.iter
    (fun seed ->
      let doc =
        Xl_workload.Xmark_gen.generate ~seed Xl_workload.Xmark_gen.tiny_scale
      in
      let store = Xml.Store.of_docs [ doc ] in
      check_query_parity
        ~suite:(Printf.sprintf "xmark-seed%d" seed)
        store
        (List.map
           (fun (q : Xl_workload.Xmark_queries.query) -> (q.id, q.text))
           Xl_workload.Xmark_queries.all))
    [ 1; 2; 3 ]

let test_xmp_parity () =
  let store = Xl_workload.Xmp_data.store () in
  check_query_parity ~suite:"xmp" store
    (List.map
       (fun (q : Xl_workload.Xmp_queries.query) -> (q.id, q.text))
       Xl_workload.Xmp_queries.all)

(* The randomized fuzz corpus sweeps far more DTD/document/query shapes
   through the hash-join fast paths than the paper suites do; a fixed
   25-seed slice keeps the sweep deterministic.  Each worker generates
   its case, evaluates the target query under both strategies on its
   own store and reduces to a serialized form (node-identity free, so
   the comparison is meaningful across separately built stores). *)
let test_fuzz_corpus_parity () =
  let outcomes =
    Xl_exec.Pool.map pool
      (fun index ->
        let case = Xl_fuzz.Case.generate ~seed:20040301 ~index in
        let store = Xl_fuzz.Case.store_of ~prepare:true case in
        let run ~fast_paths =
          Xl_fuzz.Props.eval_to_string ~fast_paths case.Xl_fuzz.Case.target
            store
        in
        (index, run ~fast_paths:true, run ~fast_paths:false))
      (List.init 25 Fun.id)
  in
  List.iter
    (fun (index, fast, naive) ->
      Alcotest.(check string)
        (Printf.sprintf "fuzz case %d hash-join vs naive" index)
        naive fast)
    outcomes

(* Three-way corpus sweep isolating the frozen selection engine: the
   default configuration (frozen scan + extent cache), the same fast
   paths with the frozen engine and extent cache switched off (tag
   index + pointer walk), and the fully naive evaluator must agree on
   every case. *)
let eval_config (case : Xl_fuzz.Case.t) (store : Xml.Store.t) ~fast_paths
    ~frozen =
  let ctx = Eval.make_ctx ~fast_paths store in
  if not frozen then begin
    ctx.Eval.use_frozen <- false;
    ctx.Eval.use_extent_cache <- false
  end;
  let v = Eval.run ctx (Xl_xqtree.Xqtree.to_ast case.Xl_fuzz.Case.target) in
  String.concat "\n"
    (List.map
       (function
         | Value.Node n -> Xml.Serialize.node_to_string n
         | Value.Atom a -> Value.atom_to_string a)
       v)

let test_fuzz_corpus_engines () =
  let outcomes =
    Xl_exec.Pool.map pool
      (fun index ->
        let case = Xl_fuzz.Case.generate ~seed:20040301 ~index in
        let store = Xl_fuzz.Case.store_of ~prepare:true case in
        ( index,
          eval_config case store ~fast_paths:true ~frozen:true,
          eval_config case store ~fast_paths:true ~frozen:false,
          eval_config case store ~fast_paths:false ~frozen:false ))
      (List.init 25 Fun.id)
  in
  List.iter
    (fun (index, frozen, unfrozen, naive) ->
      Alcotest.(check string)
        (Printf.sprintf "fuzz case %d frozen vs tag-index" index)
        unfrozen frozen;
      Alcotest.(check string)
        (Printf.sprintf "fuzz case %d frozen vs naive" index)
        naive frozen)
    outcomes

(* Direct selection parity on the Figure-16 stores: for a sample of
   concrete nodes, select by the node's generalized tag-path expression
   from the document root — and by the relative remainder from an
   ancestor base — under the frozen scan, the memoized frozen scan, and
   the pointer walk, comparing node-id sequences (identity and order). *)
let test_select_engine_parity () =
  let stores =
    [
      ( "xmark",
        (List.hd (Xl_workload.Xmark_scenarios.all ()) : string * Xl_core.Scenario.t)
        |> fun (_, sc) -> sc.Xl_core.Scenario.store );
      ("xmp", Xl_workload.Xmp_data.store ());
    ]
  in
  List.iter (fun (_, store) -> Xml.Store.prepare store) stores;
  let jobs =
    List.concat_map
      (fun (suite, store) ->
        (* every 7th node: a deterministic spread over document order *)
        let sample =
          List.filteri (fun i _ -> i mod 7 = 0) (Xml.Store.nodes store)
        in
        [ (suite, store, sample) ])
      stores
  in
  let outcomes =
    Xl_exec.Pool.map pool
      (fun (suite, store, sample) ->
        let ctx_frozen = Eval.make_ctx ~fast_paths:true store in
        ctx_frozen.Eval.use_extent_cache <- false;
        let ctx_cached = Eval.make_ctx ~fast_paths:true store in
        let ctx_walk = Eval.make_ctx ~fast_paths:false store in
        let ids ctx p base =
          String.concat ","
            (List.map
               (fun (n : Xml.Node.t) -> string_of_int n.Xml.Node.id)
               (Eval.eval_path ctx p base))
        in
        let mismatches = ref [] in
        List.iter
          (fun (n : Xml.Node.t) ->
            let root = Xml.Node.root n in
            let doc_base =
              match
                List.find_opt
                  (fun (d : Xml.Doc.t) ->
                    Xml.Node.equal d.Xml.Doc.doc_node root
                    || Xml.Node.equal (Xml.Doc.root d) root)
                  (Xml.Store.docs store)
              with
              | Some d -> d.Xml.Doc.doc_node
              | None -> root
            in
            let checks =
              (* doc-rooted: the node's own generalized path *)
              [ (Xl_core.Data_graph.generalized_path n, doc_base) ]
              @
              (* relative: the remainder below the topmost element *)
              match Xml.Node.tag_path n with
              | _root :: (_ :: _ as rest) -> (
                match
                  Xl_core.Extent.ancestor_at n (List.length rest)
                with
                | Some base ->
                  [ ( Xl_xquery.Path_expr.seq
                        (List.map
                           (fun sym ->
                             if String.length sym > 0 && sym.[0] = '@' then
                               Xl_xquery.Path_expr.child
                                 (Xl_xquery.Path_expr.Attr
                                    (String.sub sym 1 (String.length sym - 1)))
                             else if String.equal sym "#text" then
                               Xl_xquery.Path_expr.child
                                 Xl_xquery.Path_expr.Text_node
                             else
                               Xl_xquery.Path_expr.child
                                 (Xl_xquery.Path_expr.Tag sym))
                           rest),
                      base ) ]
                | None -> [])
              | _ -> []
            in
            List.iter
              (fun (p, base) ->
                let f = ids ctx_frozen p base in
                let c = ids ctx_cached p base in
                let w = ids ctx_walk p base in
                if not (String.equal f w && String.equal c w) then
                  mismatches :=
                    Printf.sprintf "%s node %d: frozen=%s cached=%s walk=%s"
                      suite n.Xml.Node.id f c w
                    :: !mismatches)
              checks)
          sample;
        (suite, List.length sample, List.rev !mismatches))
      jobs
  in
  List.iter
    (fun (suite, sampled, mismatches) ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s: %d sampled bases agree across engines" suite
           sampled)
        [] mismatches)
    outcomes

(* Streaming-ingestion parity over the fuzz corpus: for each case's
   training document, the one-pass builder (fragment walk and SAX text
   parse) and a binary snapshot round-trip must all reproduce the
   two-pass freeze-of-tree snapshot node for node. *)
let test_streaming_fuzz_parity () =
  let outcomes =
    Xl_exec.Pool.map pool
      (fun index ->
        let case = Xl_fuzz.Case.generate ~seed:20040301 ~index in
        let frag = case.Xl_fuzz.Case.training in
        let tree_fz = Xml.Frozen.freeze (Xml.Doc.of_frag ~uri:"t.xml" frag) in
        let _, frag_fz = Xml.Frozen_builder.of_frag ~uri:"t.xml" frag in
        let text = Xml.Serialize.frag_to_string frag in
        let _, parse_fz = Xml.Frozen_builder.parse ~uri:"t.xml" text in
        let snap_fz = Xml.Snapshot.of_string (Xml.Snapshot.to_string tree_fz) in
        let eq = Xml.Frozen.structural_equal tree_fz in
        (index, eq frag_fz, eq parse_fz, eq snap_fz))
      (List.init 25 Fun.id)
  in
  List.iter
    (fun (index, frag_ok, parse_ok, snap_ok) ->
      Alcotest.(check bool)
        (Printf.sprintf "fuzz case %d streamed fragment walk" index)
        true frag_ok;
      Alcotest.(check bool)
        (Printf.sprintf "fuzz case %d streamed text parse" index)
        true parse_ok;
      Alcotest.(check bool)
        (Printf.sprintf "fuzz case %d snapshot roundtrip" index)
        true snap_ok)
    outcomes

(* The same parity on the Figure-16 documents: the XMark generator's
   direct-to-builder path against generate-then-freeze (same seed, same
   scale), and each XMP document re-ingested through the SAX parser. *)
let test_streaming_fig16_parity () =
  List.iter
    (fun seed ->
      let tree_fz =
        Xml.Frozen.freeze
          (Xl_workload.Xmark_gen.generate ~seed Xl_workload.Xmark_gen.tiny_scale)
      in
      let _, stream_fz =
        Xl_workload.Xmark_gen.generate_frozen ~seed
          Xl_workload.Xmark_gen.tiny_scale
      in
      Alcotest.(check bool)
        (Printf.sprintf "xmark seed %d streamed vs tree" seed)
        true
        (Xml.Frozen.structural_equal tree_fz stream_fz))
    [ 1; 2; 3 ];
  List.iter
    (fun (d : Xml.Doc.t) ->
      let text = Xml.Serialize.node_to_string (Xml.Doc.root d) in
      let uri = Xml.Doc.uri d in
      let tree_fz = Xml.Frozen.freeze (Xml.Xml_parser.parse_doc ~uri text) in
      let _, stream_fz = Xml.Frozen_builder.parse ~uri text in
      Alcotest.(check bool)
        (Printf.sprintf "xmp %s streamed vs tree" uri)
        true
        (Xml.Frozen.structural_equal tree_fz stream_fz))
    (Xml.Store.docs (Xl_workload.Xmp_data.store ()))

(* The learner drives the evaluator on every membership/equivalence
   query; identical interaction counts under both strategies show the
   fast paths never change what the teacher observes. *)
let stats_row (name : string) (r : Xl_core.Learn.result) : string =
  let s = r.Xl_core.Learn.stats in
  Printf.sprintf "%s dd=%d(%d) mq=%d eq=%d ce=%d cb=%d(%d) ob=%d r=(%d,%d,%d) auto=%d restarts=%d verified=%b"
    name s.Xl_core.Stats.dd s.Xl_core.Stats.dd_terminals s.Xl_core.Stats.mq
    s.Xl_core.Stats.eq s.Xl_core.Stats.ce s.Xl_core.Stats.cb
    s.Xl_core.Stats.cb_terminals s.Xl_core.Stats.ob s.Xl_core.Stats.reduced_r1
    s.Xl_core.Stats.reduced_r2 s.Xl_core.Stats.reduced_both
    s.Xl_core.Stats.auto_known s.Xl_core.Stats.restarts
    r.Xl_core.Learn.verified

let fig16_scenarios () =
  let scenarios =
    List.map (fun (n, sc) -> ("xmark", n, sc)) (Xl_workload.Xmark_scenarios.all ())
    @ List.map (fun (n, sc) -> ("xmp", n, sc)) (Xl_workload.Xmp_scenarios.all ())
  in
  (* the scenarios of one suite share a store; freeze its lazy indexes
     while still single-domain *)
  List.iter
    (fun (_, _, sc) -> Xml.Store.prepare sc.Xl_core.Scenario.store)
    scenarios;
  scenarios

let run_learner_suite ~fast_paths scenarios : string list =
  let config = { Xl_core.Learn.default_config with fast_paths } in
  Xl_exec.Pool.map pool
    (fun (suite, name, sc) ->
      let label = suite ^ "-" ^ name in
      match Xl_core.Learn.run ~config sc with
      | r -> stats_row label r
      | exception e -> label ^ " FAILED " ^ Printexc.to_string e)
    scenarios

let test_learner_parity () =
  let scenarios = fig16_scenarios () in
  let fast = run_learner_suite ~fast_paths:true scenarios in
  let naive = run_learner_suite ~fast_paths:false scenarios in
  Alcotest.(check int) "same number of scenarios" (List.length naive)
    (List.length fast);
  List.iter2
    (fun f n -> Alcotest.(check string) "interaction counts" n f)
    fast naive

(* A streamed XMark store (documents ingested through the builder and
   registered with their pre-built snapshots) must be indistinguishable
   from the tree-built store: same interaction counts on every Figure-16
   scenario. *)
let test_streamed_store_learner_parity () =
  let rows scenarios =
    List.iter
      (fun (_, sc) -> Xml.Store.prepare sc.Xl_core.Scenario.store)
      scenarios;
    Xl_exec.Pool.map pool
      (fun (name, sc) ->
        match Xl_core.Learn.run sc with
        | r -> stats_row name r
        | exception e -> name ^ " FAILED " ^ Printexc.to_string e)
      scenarios
  in
  let tree = rows (Xl_workload.Xmark_scenarios.all ()) in
  let streamed = rows (Xl_workload.Xmark_scenarios.all ~streamed:true ()) in
  Alcotest.(check int) "same number of scenarios" (List.length tree)
    (List.length streamed);
  List.iter2
    (fun t s -> Alcotest.(check string) "interaction counts" t s)
    tree streamed

(* Batched-oracle invariance (DESIGN.md §5h): the batched membership
   oracle and the intra-scenario pool change who computes answers, never
   the answers — every Figure-16 stats row must be byte-identical with
   batching on and off, and with the fan-outs on one domain and on four.
   Scenarios run on the main domain here so the config's pool is the
   only pool in play. *)
let sweep_configs () =
  let pool4 = Xl_exec.Pool.create ~domains:4 () in
  [
    ("batch=off pool=seq", { Xl_core.Learn.default_config with batch = false });
    ("batch=on  pool=seq", { Xl_core.Learn.default_config with batch = true });
    ( "batch=on  pool=4",
      { Xl_core.Learn.default_config with batch = true; pool = Some pool4 } );
  ]

let test_learner_batch_parity () =
  let scenarios = fig16_scenarios () in
  let rows_under config =
    List.map
      (fun (suite, name, sc) ->
        let label = suite ^ "-" ^ name in
        match Xl_core.Learn.run ~config sc with
        | r -> stats_row label r
        | exception e -> label ^ " FAILED " ^ Printexc.to_string e)
      scenarios
  in
  match sweep_configs () with
  | [] -> assert false
  | (ref_label, ref_config) :: rest ->
    let reference = rows_under ref_config in
    List.iter
      (fun (label, config) ->
        List.iter2
          (fun expected got ->
            Alcotest.(check string)
              (Printf.sprintf "%s vs %s" label ref_label)
              expected got)
          reference (rows_under config))
      rest

(* The same invariance over the randomized corpus: 25 deterministic fuzz
   cases sweep many more DTD/alphabet/counterexample shapes through the
   batch resolver (compiled-DFA R1, deferred genuine questions, Any_last
   fallback) than the two paper suites do. *)
let test_fuzz_batch_parity () =
  let configs = sweep_configs () in
  List.iter
    (fun index ->
      let case () = Xl_fuzz.Case.generate ~seed:20040301 ~index in
      match configs with
      | [] -> assert false
      | (ref_label, ref_config) :: rest ->
        let row config =
          let sc = Xl_fuzz.Case.scenario (case ()) in
          match Xl_core.Learn.run ~config sc with
          | r -> stats_row (Printf.sprintf "case %d" index) r
          | exception e ->
            Printf.sprintf "case %d FAILED %s" index (Printexc.to_string e)
        in
        let reference = row ref_config in
        List.iter
          (fun (label, config) ->
            Alcotest.(check string)
              (Printf.sprintf "fuzz case %d: %s vs %s" index label ref_label)
              reference (row config))
          rest)
    (List.init 25 Fun.id)

(* The committed perf baseline (BENCH_perf.json, a declared test dep)
   pins the Figure-16 interaction counts: re-learning a scenario must
   reproduce its stats row byte for byte, whatever the engine does
   under the hood.  Checked on the extremes — cheap XMP Q1, cheap XMark
   Q1, and XMark Q7, whose tens of thousands of auto-answered queries
   exercise both the extent cache and the R1 step memo. *)
let baseline_stats ~suite ~name : string =
  let text =
    (* dune runtest runs in test/, dune exec in the project root *)
    let path =
      List.find_opt Sys.file_exists [ "../BENCH_perf.json"; "BENCH_perf.json" ]
    in
    match path with
    | None -> Alcotest.fail "BENCH_perf.json not found (declared test dep)"
    | Some path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
  in
  let find_from start key =
    let n = String.length text and k = String.length key in
    let rec go i =
      if i + k > n then
        Alcotest.failf "BENCH_perf.json: %S not found (after %d)" key start
      else if String.equal (String.sub text i k) key then i + k
      else go (i + 1)
    in
    go start
  in
  let suite_at = find_from 0 (Printf.sprintf "%S: { \"wall_s\"" suite) in
  let row_at =
    find_from suite_at (Printf.sprintf "{\"name\":%S," name)
  in
  let stats_at = find_from row_at "\"stats\":" in
  let rec close i =
    match text.[i] with '}' -> i | _ -> close (i + 1)
  in
  String.sub text stats_at (close stats_at - stats_at + 1)

let test_pinned_fig16_counts () =
  let subjects =
    [
      ("xmark", "Q1", List.assoc "Q1" (Xl_workload.Xmark_scenarios.all ()));
      ("xmark", "Q7", List.assoc "Q7" (Xl_workload.Xmark_scenarios.all ()));
      ("xmp", "Q1", List.assoc "Q1" (Xl_workload.Xmp_scenarios.all ()));
    ]
  in
  List.iter
    (fun (suite, name, sc) ->
      let expected = baseline_stats ~suite ~name in
      let r = Xl_core.Learn.run sc in
      Alcotest.(check string)
        (Printf.sprintf "%s %s stats row matches committed baseline" suite name)
        expected
        (Xl_core.Stats.to_json r.Xl_core.Learn.stats))
    subjects

let () =
  Alcotest.run "perf-parity"
    [
      ( "query-results",
        [
          Alcotest.test_case "xmark tiny instances, 3 seeds" `Quick
            test_xmark_parity;
          Alcotest.test_case "xmp use-case store" `Quick test_xmp_parity;
          Alcotest.test_case "randomized fuzz corpus, 25 seeds" `Quick
            test_fuzz_corpus_parity;
          Alcotest.test_case "fuzz corpus, frozen vs tag-index vs naive" `Quick
            test_fuzz_corpus_engines;
          Alcotest.test_case "fig16 stores, select-engine parity" `Quick
            test_select_engine_parity;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "fuzz corpus, streamed vs tree vs snapshot" `Quick
            test_streaming_fuzz_parity;
          Alcotest.test_case "fig16 documents, streamed vs tree" `Quick
            test_streaming_fig16_parity;
        ] );
      ( "learner",
        [
          Alcotest.test_case "fig16 suites, fast vs naive" `Slow
            test_learner_parity;
          Alcotest.test_case "xmark suite, streamed store vs tree store" `Slow
            test_streamed_store_learner_parity;
          Alcotest.test_case "fig16 suites, batch on/off x pool 1/4" `Slow
            test_learner_batch_parity;
          Alcotest.test_case "fuzz corpus, batch on/off x pool 1/4, 25 seeds"
            `Slow test_fuzz_batch_parity;
          Alcotest.test_case "interaction counts pinned to BENCH_perf.json"
            `Slow test_pinned_fig16_counts;
        ] );
    ]
