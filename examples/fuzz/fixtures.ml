(* Pinned regression fixtures: minimized counterexamples found while
   the fuzzing harness was being developed, each of which exposed (and
   now pins) a real pipeline bug.  A fixture is the tiny DTD + training
   document + target query of the minimized case; test/test_fuzz.ml
   runs the full learning pipeline on each and asserts the learned
   query is extent-equivalent to the target on the training document. *)

module Pe = Xl_xquery.Path_expr
module Sp = Xl_xquery.Simple_path
module Cond = Xl_xqtree.Cond
module Xqtree = Xl_xqtree.Xqtree

type t = {
  name : string;
  bug : string;  (** what the original counterexample exposed *)
  dtd : string;
  root : string;
  training : string;
  target : Xqtree.t;
}

(* Seed 20040301: a nested box re-selecting its own context node.  The
   relative hypothesis is the empty path, whose language is {ε} — both
   Extent.select_by_dfa and Eval.eval_path used to drop the origin
   node, so the hypothesis extent stayed empty and the teacher repeated
   the same counterexample forever; rebuild additionally kept the
   target's absolute source for the relatively-anchored task. *)
let eps_extent =
  {
    name = "eps-extent";
    bug = "the empty relative path must select the origin node itself";
    dtd = "<!ELEMENT r (b*)>\n<!ELEMENT b (#PCDATA)>";
    root = "r";
    training = "<r><b>x</b></r>";
    target =
      Xqtree.make "N1" ~tag:"results"
        ~children:
          [
            Xqtree.make "N1.1" ~tag:"outer" ~var:"v1"
              ~source:(Xqtree.Abs (None, Pe.steps [ "r" ]))
              ~children:
                [
                  Xqtree.make "N1.1.1" ~tag:"inner" ~var:"v2"
                    ~source:(Xqtree.Abs (None, Pe.steps [ "r" ]));
                ];
          ];
  }

(* Seed 20040301: a join whose drop-context extent is unchanged without
   it ($v1 = a("p1") matches every b), so greedy minimization discards
   it — yet the sibling context $v1 = a("p2") separates the two
   hypotheses.  End-to-end verification fails and the repair sweep must
   restore the minimized-away candidate from the negative
   counterexample. *)
let spare_join =
  {
    name = "spare-join";
    bug = "the verification sweep must restore a minimized-away join";
    dtd =
      "<!ELEMENT r (a*,b*)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>";
    root = "r";
    training = "<r><a>p1</a><a>p2</a><b>p1</b><b>p1</b></r>";
    target =
      Xqtree.make "N1" ~tag:"results"
        ~children:
          [
            Xqtree.make "N1.1" ~tag:"m" ~var:"v1"
              ~source:(Xqtree.Abs (None, Pe.steps [ "r"; "a" ]))
              ~children:
                [
                  Xqtree.make "N1.1.1" ~tag:"n" ~var:"v2"
                    ~source:(Xqtree.Abs (None, Pe.steps [ "r"; "b" ]))
                    ~conds:[ Cond.Join (Cond.ep "v2", Cond.ep "v1") ];
                ];
          ];
  }

(* Seed 20040301, case 233: two join endpoints that coincide on the
   training instance (data($v2/c/d) agrees with data($v2/d/@k) on every
   context).  The teacher is instance-bound, so either conjunction is a
   correct answer; the pipeline must still converge and match the
   target on the training document. *)
let twin_join =
  {
    name = "twin-join";
    bug = "coinciding join endpoints must still verify on the instance";
    dtd =
      "<!ELEMENT r (b*)>\n\
       <!ELEMENT b (c+,d*)>\n\
       <!ATTLIST b\n\
      \  k CDATA #REQUIRED>\n\
       <!ELEMENT c (d*)>\n\
       <!ELEMENT d (#PCDATA)>\n\
       <!ATTLIST d\n\
      \  k CDATA #REQUIRED>";
    root = "r";
    training =
      "<r><b k=\"d1_0\"><c><d k=\"d0_0\">d0_1</d></c><c><d \
       k=\"d0_1\">d0_2</d></c><d k=\"d0_1\">d0_2</d></b></r>";
    target =
      Xqtree.make "N1" ~tag:"results"
        ~children:
          [
            Xqtree.make "N1.1" ~tag:"c" ~var:"v1"
              ~source:(Xqtree.Abs (None, Pe.steps [ "r"; "b"; "c" ]))
              ~children:
                [
                  Xqtree.make "N1.1.1" ~tag:"b" ~var:"v2"
                    ~source:(Xqtree.Abs (None, Pe.steps [ "r"; "b" ]))
                    ~conds:
                      [
                        Cond.Join
                          ( Cond.ep ~path:(Sp.of_string "d/@k") "v2",
                            Cond.ep ~path:(Sp.of_string "d/@k") "v1" );
                      ];
                ];
          ];
  }

let all = [ eps_extent; spare_join; twin_join ]
