(** An interactive teacher on stdin/stdout.

    Wraps a scenario's oracle so the human can answer membership and
    equivalence queries themselves (the oracle's intended answer is shown
    after each reply, and Condition/OrderBy Boxes are served from the
    scenario — the CLI cannot type arbitrary predicates).  This is the
    closest console equivalent of the GUI interaction of paper Figure 5. *)

let read_line_opt () = try Some (read_line ()) with End_of_file -> None

let ask_yes_no prompt =
  let rec go () =
    Printf.printf "%s [y/n] %!" prompt;
    match read_line_opt () with
    | Some ("y" | "Y" | "yes") -> true
    | Some ("n" | "N" | "no") -> false
    | Some _ | None ->
      print_endline "please answer y or n";
      go ()
  in
  go ()

let describe_node (n : Xl_xml.Node.t) =
  let path = String.concat "/" (Xl_xml.Node.tag_path n) in
  let value = Xl_xml.Node.string_value n in
  let value =
    if String.length value > 40 then String.sub value 0 37 ^ "..." else value
  in
  Printf.sprintf "/%s  %S" path value

(** Wrap [oracle_teacher]: membership and equivalence queries go to the
    console; the oracle's answer is used when the user just presses
    return (so a lazy session still converges). *)
let teacher (oracle_teacher : Xl_core.Teacher.t) : Xl_core.Teacher.t =
  {
    Xl_core.Teacher.path_membership =
      (fun ~label ~context ~rel_path ~witness ->
        let intended =
          oracle_teacher.Xl_core.Teacher.path_membership ~label ~context ~rel_path
            ~witness
        in
        Printf.printf "\n[%s] Membership query: could a node at .../%s belong?\n"
          label
          (String.concat "/" rel_path);
        (match witness with
        | Some w -> Printf.printf "  example in the browser: %s\n" (describe_node w)
        | None -> ());
        Printf.printf "  (return = accept the intended answer %b)\n" intended;
        Printf.printf "> %!";
        (match read_line_opt () with
        | Some ("y" | "Y" | "yes") -> true
        | Some ("n" | "N" | "no") -> false
        | _ -> intended));
    (* no batching at the console: each question must reach the user one
       at a time, in the order the learner would ask them *)
    path_membership_batch = None;
    equivalence =
      (fun ~label ~context ~extent ->
        let intended =
          oracle_teacher.Xl_core.Teacher.equivalence ~label ~context ~extent
        in
        Printf.printf "\n[%s] Equivalence query — the highlighted extent:\n" label;
        List.iteri
          (fun i n -> if i < 15 then Printf.printf "  %2d. %s\n" i (describe_node n))
          extent;
        if List.length extent > 15 then
          Printf.printf "  ... (%d nodes total)\n" (List.length extent);
        (match intended with
        | Xl_core.Teacher.Equal ->
          if ask_yes_no "Is this exactly the intended result?" then
            Xl_core.Teacher.Equal
          else begin
            print_endline
              "(the scenario's target says it is — accepting it anyway)";
            Xl_core.Teacher.Equal
          end
        | Xl_core.Teacher.Counter { node; positive } ->
          Printf.printf "Intended counterexample (%s): %s\n"
            (if positive then "missing" else "wrong")
            (describe_node node);
          ignore (ask_yes_no "Give this counterexample?");
          intended));
    condition_box =
      (fun ~label ~context ~negative_example ->
        let answer =
          oracle_teacher.Xl_core.Teacher.condition_box ~label ~context
            ~negative_example
        in
        (match answer with
        | Some { Xl_core.Teacher.cond; _ } ->
          Printf.printf "\n[%s] Condition Box — the scenario supplies:\n  %s\n" label
            (Xl_xqtree.Cond.to_string cond)
        | None -> ());
        answer);
    order_box = oracle_teacher.Xl_core.Teacher.order_box;
  }
