(* The xlearner command-line tool.

     xlearner list                         -- available learning scenarios
     xlearner learn xmark Q14 [--show-query] [--no-r1] [--no-r2] [--worst]
                                           [--interactive]
                                           [--suspend-at N --snapshot PATH]
                                           [--resume PATH]
     xlearner generate [--scale tiny] [--seed N] [-o out.xml]
     xlearner template [--suite xmark|xmp] -- show the target-side template
     xlearner eval -q QUERY [-f data.xml]  -- run an XQuery on a document
     xlearner obs-report trace.jsonl       -- offline analysis of a recorded
                                              trace (self time, utilization,
                                              critical path) *)

open Cmdliner

let suite_scenarios = function
  | "xmark" -> Xl_workload.Xmark_scenarios.all ()
  | "xmp" -> Xl_workload.Xmp_scenarios.all ()
  | s -> failwith (Printf.sprintf "unknown suite %S (expected xmark or xmp)" s)

(* ---- list -------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (suite, scenarios) ->
        Printf.printf "%s:\n" suite;
        List.iter
          (fun (name, sc) ->
            Printf.printf "  %-5s %s\n" name sc.Xl_core.Scenario.description)
          scenarios)
      [ ("xmark", Xl_workload.Xmark_scenarios.all ()); ("xmp", Xl_workload.Xmp_scenarios.all ()) ]
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available learning scenarios")
    Term.(const run $ const ())

(* ---- learn ------------------------------------------------------------- *)

let learn_cmd =
  let suite =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SUITE" ~doc:"xmark or xmp")
  in
  let query =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"e.g. Q14")
  in
  let show_query =
    Arg.(value & flag & info [ "show-query" ] ~doc:"Print the learned XQuery text")
  in
  let show_tree =
    Arg.(value & flag & info [ "show-tree" ] ~doc:"Print the learned XQ-Tree listing")
  in
  let no_r1 = Arg.(value & flag & info [ "no-r1" ] ~doc:"Disable reduction rule R1") in
  let no_r2 = Arg.(value & flag & info [ "no-r2" ] ~doc:"Disable reduction rule R2") in
  let worst =
    Arg.(value & flag & info [ "worst" ] ~doc:"Adversarial counterexample choice")
  in
  let interactive =
    Arg.(value & flag & info [ "interactive"; "i" ] ~doc:"Answer the learner's queries on stdin")
  in
  let transcript =
    Arg.(value & flag & info [ "transcript" ] ~doc:"Print the interaction transcript")
  in
  let suspend_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "suspend-at" ] ~docv:"N"
          ~doc:
            "Suspend the learner once $(docv) questions have been \
             answered, write its state with $(b,--snapshot) and exit; \
             resume later (in any process) with $(b,--resume)")
  in
  let snapshot_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"PATH"
          ~doc:"Where $(b,--suspend-at) writes the machine snapshot")
  in
  let resume_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"PATH"
          ~doc:
            "Restore a machine snapshot written by $(b,--snapshot) and \
             finish the session from its suspension point (the learning \
             configuration is taken from the snapshot, so $(b,--no-r1) \
             and friends are ignored)")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~env:(Cmd.Env.info "XLEARNER_TRACE")
          ~doc:
            "Enable telemetry and write a JSONL trace (spans, metrics and \
             the teacher dialog) to $(docv); also prints a summary table")
  in
  let perfetto_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"PATH"
          ~doc:
            "Also write the recorded spans as a Chrome trace-event file \
             (open it in ui.perfetto.dev)")
  in
  let profile_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"PATH"
          ~doc:
            "Run the wall-clock sampling profiler during the learning run \
             and write folded (flamegraph) stacks to $(docv)")
  in
  let run suite query show_query show_tree no_r1 no_r2 worst interactive
      transcript suspend_at snapshot_file resume_file trace_file perfetto_file
      profile_file =
    let scenarios = suite_scenarios suite in
    match List.assoc_opt query scenarios with
    | None ->
      Printf.eprintf "no scenario %s in suite %s (try 'xlearner list')\n" query suite;
      exit 1
    | Some sc ->
      let config =
        {
          Xl_core.Learn.default_config with
          rules = { Xl_core.Plearner.r1 = not no_r1; r2 = not no_r2 };
          strategy = (if worst then Xl_core.Oracle.Worst else Xl_core.Oracle.Best);
        }
      in
      if suspend_at <> None && snapshot_file = None then begin
        Printf.eprintf "--suspend-at needs --snapshot PATH\n";
        exit 1
      end;
      if trace_file <> None || perfetto_file <> None || profile_file <> None then
        Xl_obs.Obs.set_enabled true;
      if profile_file <> None then Xl_obs.Profiler.start ();
      let tr = Xl_core.Trace.create () in
      let wrap_teacher t =
        let t = if interactive then Interactive.teacher t else t in
        if transcript || trace_file <> None then Xl_core.Trace.wrap tr t else t
      in
      (* the learning session as an explicit loop over the resumable
         machine: start (or restore) it, answer each question with the
         simulated oracle — decorated for interactive/transcript mode —
         and feed the answer back through Machine.step *)
      let m0 =
        match resume_file with
        | None -> Xl_core.Machine.start ~config sc
        | Some path -> (
          let data =
            try
              let ic = open_in_bin path in
              let n = in_channel_length ic in
              let s = really_input_string ic n in
              close_in ic;
              s
            with Sys_error e ->
              Printf.eprintf "cannot read snapshot %s: %s\n" path e;
              exit 1
          in
          try Xl_core.Machine.restore ~scenario:sc data with
          | Xl_core.Machine.Corrupt msg ->
            Printf.eprintf "corrupt snapshot %s: %s\n" path msg;
            exit 1)
      in
      (match resume_file with
      | Some path ->
        Printf.printf "resumed     : %s at step %d\n" path
          (Xl_core.Machine.steps m0)
      | None -> ());
      let teacher = wrap_teacher (Xl_core.Machine.oracle_teacher m0) in
      let rec loop m =
        match Xl_core.Machine.outcome m with
        | `Done r -> `Done r
        | `Ask _ when suspend_at = Some (Xl_core.Machine.steps m) -> `Suspended m
        | `Ask q ->
          loop (snd (Xl_core.Machine.step m (Xl_core.Machine.answer_with teacher q)))
      in
      (match loop m0 with
      | `Suspended m ->
        let path = Option.get snapshot_file in
        let data = Xl_core.Machine.snapshot m in
        let oc = open_out_bin path in
        output_string oc data;
        close_out oc;
        (* unwind the engine so its open telemetry spans record *)
        Xl_core.Machine.abort m;
        Printf.printf "scenario    : %s %s — %s\n" suite query
          sc.Xl_core.Scenario.description;
        Printf.printf "suspended   : after %d answers (%d-byte snapshot %s)\n"
          (Xl_core.Machine.steps m) (String.length data) path;
        Printf.printf "resume with : xlearner learn %s %s --resume %s\n" suite
          query path
      | `Done r ->
        if transcript then begin
          print_endline "interaction transcript:";
          print_endline (Xl_core.Trace.to_string tr);
          print_newline ()
        end;
        Printf.printf "scenario    : %s %s — %s\n" suite query
          sc.Xl_core.Scenario.description;
        Printf.printf "interactions: %s\n" (Xl_core.Stats.to_row r.Xl_core.Learn.stats);
        Printf.printf "              (D&D(#t)  MQ  CE  CB(#t)  OB  Reduced(R1,R2,Both))\n";
        Printf.printf "verified    : %b\n" r.Xl_core.Learn.verified;
        if show_tree then begin
          print_endline "\nlearned XQ-Tree:";
          print_endline (Xl_xqtree.Xqtree.to_listing r.Xl_core.Learn.learned)
        end;
        if show_query then begin
          print_endline "\nlearned query:";
          print_endline r.Xl_core.Learn.query_text
        end);
      Xl_obs.Profiler.stop ();
      (match trace_file with
      | None -> ()
      | Some path ->
        (* teacher-dialog records interleave with the spans by the shared
           sequence counter *)
        Xl_obs.Obs.write_jsonl ~extra:(Xl_core.Trace.to_jsonl_events tr) path;
        Printf.printf "\nwrote trace %s (%d dialog events)\n" path
          (Xl_core.Trace.length tr);
        print_string (Xl_obs.Obs.summary_table ()));
      (match perfetto_file with
      | None -> ()
      | Some path ->
        Xl_obs.Perfetto.write
          ~counter_samples:(Xl_obs.Profiler.counter_samples ())
          path;
        Printf.printf "wrote perfetto trace %s\n" path);
      match profile_file with
      | None -> ()
      | Some path ->
        Xl_obs.Profiler.write_folded path;
        Printf.printf "wrote folded profile %s (%d samples over %d ticks)\n"
          path
          (Xl_obs.Profiler.sample_count ())
          (Xl_obs.Profiler.ticks ())
  in
  Cmd.v
    (Cmd.info "learn" ~doc:"Run a learning scenario and report the interaction counts")
    Term.(
      const run $ suite $ query $ show_query $ show_tree $ no_r1 $ no_r2 $ worst
      $ interactive $ transcript $ suspend_at $ snapshot_file $ resume_file
      $ trace_file $ perfetto_file $ profile_file)

(* ---- generate ----------------------------------------------------------- *)

let generate_cmd =
  let scale =
    Arg.(value & opt string "default" & info [ "scale" ] ~doc:"tiny or default")
  in
  let seed = Arg.(value & opt int 20040301 & info [ "seed" ] ~doc:"PRNG seed") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run scale seed out =
    let sc =
      match scale with
      | "tiny" -> Xl_workload.Xmark_gen.tiny_scale
      | _ -> Xl_workload.Xmark_gen.default_scale
    in
    let doc = Xl_workload.Xmark_gen.generate ~seed sc in
    let text =
      Xl_xml.Serialize.frag_to_pretty_string
        (Xl_xml.Serialize.node_to_frag (Xl_xml.Doc.root doc))
    in
    match out with
    | None -> print_string text
    | Some f ->
      let oc = open_out f in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s (%d nodes)\n" f (Xl_xml.Doc.node_count doc)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a deterministic XMark auction document")
    Term.(const run $ scale $ seed $ out)

(* ---- template ----------------------------------------------------------- *)

let template_cmd =
  let suite =
    Arg.(value & pos 0 string "xmark" & info [] ~docv:"SUITE" ~doc:"xmark or xmp")
  in
  let run suite =
    let dtd =
      match suite with
      | "xmp" -> Xl_workload.Xmp_data.get_dtd ()
      | _ -> Xl_workload.Xmark_dtd.get ()
    in
    print_endline (Xl_core.Template.to_string (Xl_core.Template.from_dtd ~depth:5 dtd))
  in
  Cmd.v
    (Cmd.info "template"
       ~doc:"Show the template generated from a schema (1-labeled edges marked)")
    Term.(const run $ suite)

(* ---- eval ---------------------------------------------------------------- *)

let eval_cmd =
  let query =
    Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"XQUERY")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
           ~doc:"XML input (default: a generated XMark document)")
  in
  let run query file =
    let doc =
      match file with
      | Some f ->
        let ic = open_in_bin f in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        Xl_xml.Xml_parser.parse_doc ~uri:f src
      | None -> Xl_workload.Xmark_gen.generate Xl_workload.Xmark_gen.default_scale
    in
    let ctx = Xl_xquery.Eval.ctx_of_doc doc in
    let ast = Xl_xquery.Parser.parse query in
    print_endline (Xl_xquery.Eval.run_to_string ctx ast)
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate an XQuery expression against a document")
    Term.(const run $ query $ file)

(* ---- obs-report ---------------------------------------------------------- *)

let obs_report_cmd =
  let trace =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"A JSONL trace written with --trace")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows per report section")
  in
  let session =
    Arg.(
      value & opt (some string) None
      & info [ "session" ] ~docv:"ID"
          ~doc:
            "Restrict the report to spans tagged with this session id (the \
             session server tags every span of a session's work)")
  in
  let run trace top session =
    match Xl_obs.Trace_analysis.load trace with
    | Error e ->
      Printf.eprintf "obs-report: malformed trace %s: %s\n" trace e;
      exit 1
    | Ok t -> (
      match session with
      | None ->
        print_string (Xl_obs.Trace_analysis.report ~top t);
        (match Xl_obs.Trace_analysis.sessions t with
        | [] -> ()
        | ids ->
          Printf.printf "\n-- sessions (filter with --session ID) --\n";
          List.iteri
            (fun i (id, count, ns) ->
              if i < top then
                Printf.printf "  %-24s %6d spans %10.2f ms\n" id count
                  (float_of_int ns /. 1e6))
            ids)
      | Some id ->
        let sub = Xl_obs.Trace_analysis.filter_session t id in
        if sub.Xl_obs.Trace_analysis.spans = [] then begin
          Printf.eprintf "obs-report: no spans tagged with session %S\n" id;
          exit 1
        end;
        Printf.printf "(session %s)\n" id;
        print_string (Xl_obs.Trace_analysis.report ~top sub))
  in
  Cmd.v
    (Cmd.info "obs-report"
       ~doc:
         "Analyze a recorded JSONL trace: span-tree self time, per-worker \
          utilization and the critical path")
    Term.(const run $ trace $ top $ session)

(* ---- serve ---------------------------------------------------------------- *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt string "/tmp/xlearner.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket to listen on")
  in
  let workers =
    Arg.(
      value & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Learner worker domains (default: XLEARNER_JOBS or cores - 1)")
  in
  let spool =
    Arg.(
      value & opt (some string) None
      & info [ "spool" ] ~docv:"DIR"
          ~doc:"Suspend/resume spool directory (default: SOCKET.spool)")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL telemetry trace on shutdown"
          ~env:(Cmd.Env.info "XLEARNER_TRACE"))
  in
  let run socket workers spool trace =
    if Option.is_some trace then Xl_obs.Obs.set_enabled true;
    let t = Xl_server.Server.create ?workers ?spool ~socket () in
    Printf.printf "xlearner serving on %s (%d scenarios)\n%!" socket
      (List.length
         (Xl_workload.Xmark_scenarios.all () @ Xl_workload.Xmp_scenarios.all ()));
    (* SIGINT/SIGTERM shut the loop down cleanly so the trace is written *)
    let stop _ = Xl_server.Server.shutdown t in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
     with Invalid_argument _ -> ());
    Xl_server.Server.serve t;
    match trace with
    | Some path ->
      Xl_obs.Obs.write_jsonl path;
      Printf.printf "trace written to %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Host concurrent interactive learning sessions over a Unix socket \
          (HTTP/1.1 + JSON)")
    Term.(const run $ socket $ workers $ spool $ trace)

(* ---- fig16 shortcut ------------------------------------------------------- *)

let bench_cmd =
  let run () =
    print_endline "run the full evaluation with: dune exec bench/main.exe"
  in
  Cmd.v (Cmd.info "bench" ~doc:"Pointer to the benchmark harness") Term.(const run $ const ())

let () =
  let doc = "XLearner: learn XQuery mapping queries from examples (ICDE 2004)" in
  let info = Cmd.info "xlearner" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; learn_cmd; generate_cmd; template_cmd; eval_cmd;
            obs_report_cmd; serve_cmd; bench_cmd;
          ]))
